package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collect drains a Stream channel into a slice.
func collect(ch <-chan Result) []Result {
	var out []Result
	for r := range ch {
		out = append(out, r)
	}
	return out
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(4); got != 4 {
		t.Fatalf("Workers(4) = %d", got)
	}
	if got := Workers(1 << 20); got != MaxWorkers {
		t.Fatalf("Workers(huge) = %d, want cap %d", got, MaxWorkers)
	}
}

func TestGatherOrderedMerge(t *testing.T) {
	s := New(4)
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{Index: i, Seed: uint64(i), Do: func(context.Context) (any, error) {
			return i * i, nil
		}}
	}
	rs := s.Gather(context.Background(), items)
	for i, r := range rs {
		if r.Index != i || r.Err != nil || r.Value.(int) != i*i {
			t.Fatalf("result %d = %+v, want value %d in order", i, r, i*i)
		}
	}
}

// TestGatherDeterministicAcrossWorkerCounts pins the runtime's core
// promise: the merged result set is identical at any worker count.
func TestGatherDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		s := New(workers)
		items := make([]Item, 32)
		for i := range items {
			items[i] = Item{Index: i, Do: func(context.Context) (any, error) { return 7*i + 1, nil }}
		}
		rs := s.Gather(context.Background(), items)
		out := make([]int, len(rs))
		for i, r := range rs {
			out[i] = r.Value.(int)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestStreamDeliversEverything(t *testing.T) {
	s := New(3)
	items := make([]Item, 17)
	for i := range items {
		items[i] = Item{Index: i, Do: func(context.Context) (any, error) { return i, nil }}
	}
	rs := collect(s.Stream(context.Background(), items))
	if len(rs) != len(items) {
		t.Fatalf("delivered %d results, want %d", len(rs), len(items))
	}
	seen := make(map[int]bool)
	for _, r := range rs {
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		if r.Value.(int) != r.Index {
			t.Fatalf("index %d carried value %v", r.Index, r.Value)
		}
	}
}

// TestStreamBoundedBuffer pins the satellite fix: the channel buffer no
// longer scales with the submission size.
func TestStreamBoundedBuffer(t *testing.T) {
	s := New(2)
	items := make([]Item, 1000)
	for i := range items {
		items[i] = Item{Index: i, Do: func(context.Context) (any, error) { return nil, nil }}
	}
	ch := s.Stream(context.Background(), items)
	if c := cap(ch); c > streamBuffer {
		t.Fatalf("stream channel buffer = %d, want <= %d", c, streamBuffer)
	}
	if got := len(collect(ch)); got != 1000 {
		t.Fatalf("delivered %d, want 1000 despite the bounded buffer", got)
	}
}

// TestStreamSlowConsumerDoesNotBlockWorkers: with a single worker and a
// consumer that reads nothing until the end, every item must still run.
func TestStreamSlowConsumerDoesNotBlockWorkers(t *testing.T) {
	s := New(1)
	var ran atomic.Int32
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{Index: i, Do: func(context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		}}
	}
	ch := s.Stream(context.Background(), items)
	deadline := time.Now().Add(10 * time.Second)
	for ran.Load() < 100 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/100 items ran while the consumer was away", ran.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if got := len(collect(ch)); got != 100 {
		t.Fatalf("delivered %d, want 100", got)
	}
}

func TestPriorityOrdersDispatch(t *testing.T) {
	s := New(1)
	block := make(chan struct{})
	var order []int
	var mu sync.Mutex
	record := func(id int) func(context.Context) (any, error) {
		return func(context.Context) (any, error) {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			return nil, nil
		}
	}
	// Occupy the single worker so later submissions queue behind it.
	gate := s.Stream(context.Background(), []Item{{Index: 0, Do: func(context.Context) (any, error) {
		<-block
		return nil, nil
	}}})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.Gather(context.Background(), []Item{{Index: 0, Priority: PriorityBatch, Do: record(1)}})
	}()
	// Give the first submission time to land in the queue, then jump it.
	time.Sleep(20 * time.Millisecond)
	go func() {
		defer wg.Done()
		s.Gather(context.Background(), []Item{{Index: 0, Priority: PriorityNested, Do: record(2)}})
	}()
	time.Sleep(20 * time.Millisecond)
	close(block)
	collect(gate)
	wg.Wait()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("dispatch order = %v, want nested-priority item first", order)
	}
}

// TestSingleFlightCoalesces is the acceptance check: identical in-flight
// keys perform exactly one invocation, and followers see Shared.
func TestSingleFlightCoalesces(t *testing.T) {
	s := New(8)
	var invocations atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	items := make([]Item, 8)
	for i := range items {
		items[i] = Item{Index: i, Key: "same-fingerprint", Do: func(context.Context) (any, error) {
			if invocations.Add(1) == 1 {
				close(started)
			}
			<-release
			return "value", nil
		}}
	}
	done := make(chan []Result, 1)
	go func() { done <- s.Gather(context.Background(), items) }()
	<-started
	// All eight items are dispatched concurrently; give followers time to
	// pile onto the leader's flight before releasing it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	rs := <-done
	if n := invocations.Load(); n != 1 {
		t.Fatalf("%d invocations for one in-flight key, want 1", n)
	}
	shared := 0
	for _, r := range rs {
		if r.Err != nil || r.Value.(string) != "value" {
			t.Fatalf("result %+v", r)
		}
		if r.Shared {
			shared++
		}
	}
	if shared != 7 {
		t.Fatalf("%d shared results, want 7 followers", shared)
	}
}

func TestSingleFlightDistinctKeysDoNotCoalesce(t *testing.T) {
	s := New(4)
	var invocations atomic.Int32
	items := make([]Item, 6)
	for i := range items {
		items[i] = Item{Index: i, Key: fmt.Sprintf("fp-%d", i), Do: func(context.Context) (any, error) {
			invocations.Add(1)
			return nil, nil
		}}
	}
	s.Gather(context.Background(), items)
	if n := invocations.Load(); n != 6 {
		t.Fatalf("%d invocations, want 6 distinct runs", n)
	}
}

func TestFlightGroup(t *testing.T) {
	var f Flight
	var invocations atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	var sharedCount atomic.Int32
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, shared := f.Do("k", func() (any, error) {
				invocations.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				panic("bad flight value")
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait for the leader to start, then let stragglers join its flight.
	for invocations.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if invocations.Load() != 1 {
		t.Fatalf("%d invocations, want 1", invocations.Load())
	}
	if sharedCount.Load() != 4 {
		t.Fatalf("%d shared, want 4", sharedCount.Load())
	}
	// The key is forgotten after completion: a fresh call runs again.
	_, _, shared := f.Do("k", func() (any, error) { return 1, nil })
	if shared {
		t.Fatal("completed flight still coalescing")
	}
}

// TestNestedGatherNoDeadlock: every worker fans out again; the pool must
// finish via help-mode joins even at one worker.
func TestNestedGatherNoDeadlock(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		s := New(workers)
		outer := make([]Item, 6)
		for i := range outer {
			outer[i] = Item{Index: i, Do: func(ctx context.Context) (any, error) {
				inner := make([]Item, 4)
				for k := range inner {
					inner[k] = Item{Index: k, Priority: PriorityNested, Do: func(context.Context) (any, error) {
						return k + 100*i, nil
					}}
				}
				sum := 0
				for _, r := range From(ctx).Gather(ctx, inner) {
					if r.Err != nil {
						return nil, r.Err
					}
					sum += r.Value.(int)
				}
				return sum, nil
			}}
		}
		done := make(chan []Result, 1)
		ctx := With(context.Background(), s)
		go func() { done <- s.Gather(ctx, outer) }()
		select {
		case rs := <-done:
			for i, r := range rs {
				want := 4*100*i + 6
				if r.Err != nil || r.Value.(int) != want {
					t.Fatalf("workers=%d: outer %d = %+v, want %d", workers, i, r, want)
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: nested fan-out deadlocked", workers)
		}
	}
}

func TestGatherCancellationMarksSkipped(t *testing.T) {
	s := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	items := []Item{
		{Index: 0, Do: func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}},
		{Index: 1, Do: func(context.Context) (any, error) { return "ran", nil }},
	}
	go func() {
		<-started
		cancel()
	}()
	rs := s.Gather(ctx, items)
	if rs[0].Skipped || !errors.Is(rs[0].Err, context.Canceled) {
		t.Fatalf("started item = %+v, want mid-run cancellation error", rs[0])
	}
	if !rs[1].Skipped || !errors.Is(rs[1].Err, context.Canceled) {
		t.Fatalf("queued item = %+v, want Skipped", rs[1])
	}
}

func TestStreamCancellationDropsUndispatched(t *testing.T) {
	s := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	items := make([]Item, 10)
	items[0] = Item{Index: 0, Do: func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	for i := 1; i < 10; i++ {
		items[i] = Item{Index: i, Do: func(context.Context) (any, error) { return nil, nil }}
	}
	go func() {
		<-started
		cancel()
	}()
	rs := collect(s.Stream(ctx, items))
	// Only the started item may appear; the other nine were skipped. (The
	// single worker guarantees none of them started before the cancel.)
	if len(rs) != 1 || rs[0].Index != 0 || rs[0].Err == nil {
		t.Fatalf("stream after cancel = %+v, want just the in-flight failure", rs)
	}
}

// TestNoGoroutineLeak: after submissions finish, the pool drains to zero
// workers.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(8)
	for round := 0; round < 5; round++ {
		items := make([]Item, 50)
		for i := range items {
			items[i] = Item{Index: i, Do: func(context.Context) (any, error) { return nil, nil }}
		}
		s.Gather(context.Background(), items)
		collect(s.Stream(context.Background(), items))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after idle", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDefaultSchedulerFromContext(t *testing.T) {
	if From(context.Background()) != Default() {
		t.Fatal("bare context should resolve to the default scheduler")
	}
	s := New(2)
	if From(With(context.Background(), s)) != s {
		t.Fatal("With-installed scheduler not returned by From")
	}
}

func TestGatherEmpty(t *testing.T) {
	s := New(4)
	if rs := s.Gather(context.Background(), nil); len(rs) != 0 {
		t.Fatalf("empty gather returned %v", rs)
	}
	if rs := collect(s.Stream(context.Background(), nil)); len(rs) != 0 {
		t.Fatalf("empty stream returned %v", rs)
	}
}

// TestErrorsPropagatePerItem: one failing item does not poison the rest.
func TestErrorsPropagatePerItem(t *testing.T) {
	s := New(4)
	boom := errors.New("boom")
	items := make([]Item, 10)
	for i := range items {
		items[i] = Item{Index: i, Do: func(context.Context) (any, error) {
			if i == 3 {
				return nil, boom
			}
			return i, nil
		}}
	}
	rs := s.Gather(context.Background(), items)
	for i, r := range rs {
		if i == 3 {
			if !errors.Is(r.Err, boom) {
				t.Fatalf("item 3 err = %v, want boom", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Value.(int) != i {
			t.Fatalf("item %d = %+v", i, r)
		}
	}
}
