// Package exec is the unified execution runtime: one bounded work
// scheduler under every layer that fans work out — eend.RunBatch,
// WithReplicates replication, sweep.Runner, and eend/opt's random-restart
// search all submit Items here instead of spinning private worker pools.
//
// The scheduler's contract is determinism first: an Item's value never
// depends on when or where it runs. Each item carries the seed it was
// derived under at submission time, results merge back in item order
// (Gather) or carry their index for the caller to reorder (Stream), and
// single-flight coalescing only ever shares the one value a key's leader
// computed — so parallel execution reproduces sequential output
// bit-for-bit, at any worker count.
//
// Nested fan-out is first-class: an item that itself submits items (a
// batched scenario fanning out its replicates, a restart search evaluating
// candidates) calls Gather with the ctx its Do received. The scheduler
// recognizes its own workers and lets them help drain the queue while they
// wait, so the worker budget is respected without deadlocking the pool.
package exec

import (
	"context"
	"runtime"
	"slices"
	"sync"
)

// MaxWorkers is the hard upper cap on any scheduler's worker count: a
// request for more (for example over HTTP) is clamped, never honored —
// beyond this, goroutine overhead only subtracts from throughput.
const MaxWorkers = 256

// Workers normalizes a requested worker count to the runtime's policy:
// n <= 0 means GOMAXPROCS, and everything is capped at MaxWorkers. Every
// layer that accepts a worker knob (RunBatch, sweep.Runner, opt.Options,
// the eendd request surface) funnels through here, so the policy lives in
// exactly one place.
func Workers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > MaxWorkers {
		n = MaxWorkers
	}
	return n
}

// Item is one schedulable unit of work.
type Item struct {
	// Index is the item's position within its submission; Gather returns
	// results in Index order and Stream carries it for correlation.
	Index int
	// Seed is the random seed the item's work was derived under. The
	// scheduler does not use it — it is fixed at submission time precisely
	// so that scheduling order cannot influence it — and it is echoed on
	// the item's Result for layers that assert the derivation.
	Seed uint64
	// Priority orders dispatch when items queue: lower runs earlier.
	// Nested submissions default to PriorityNested so in-progress parents
	// finish before fresh top-level work starts.
	Priority int
	// Key, when non-empty, enables single-flight coalescing: while an
	// item with this key is running, other items with the same key wait
	// for its value instead of recomputing it. Keys compose with the
	// content-addressed result cache — a scenario fingerprint is a Key.
	Key string
	// Do performs the work. The ctx it receives derives from the
	// submission's ctx and marks the goroutine as a scheduler worker, so
	// nested Gather calls must pass it on.
	Do func(ctx context.Context) (any, error)
}

// Dispatch priorities (lower dispatches earlier).
const (
	// PriorityBatch is the default for top-level submissions.
	PriorityBatch = 0
	// PriorityNested is used by nested fan-outs (replicates under a
	// batched scenario): finishing started work beats starting new work.
	PriorityNested = -1
)

// Result is one item's outcome.
type Result struct {
	// Index is the submitting Item's Index.
	Index int
	// Seed echoes the submitting Item's Seed.
	Seed uint64
	// Value is Do's return value; nil when Err is set.
	Value any
	// Err is Do's error, or the submission ctx's error for items
	// cancelled before or while running.
	Err error
	// Shared reports that the value came from another in-flight item's
	// run via single-flight coalescing, not from this item's own Do.
	Shared bool
	// Skipped reports that the item was never started because the
	// submission's ctx was already cancelled at dispatch time.
	Skipped bool
}

// Scheduler is a bounded work scheduler. Workers are spawned on demand up
// to the bound and exit when the queue drains; a zero-work scheduler costs
// nothing. All methods are safe for concurrent use.
type Scheduler struct {
	workers int

	mu      sync.Mutex
	queue   entryHeap
	seq     uint64
	running int // live worker goroutines
	parked  int // workers blocked in nested waits; they free a budget slot
	flight  map[string]*flightCall
}

// New returns a scheduler bounded at Workers(workers).
func New(workers int) *Scheduler {
	return &Scheduler{
		workers: Workers(workers),
		flight:  make(map[string]*flightCall),
	}
}

// WorkerCount returns the scheduler's normalized worker bound.
func (s *Scheduler) WorkerCount() int { return s.workers }

// defaultScheduler serves layers that fan out without an enclosing
// scheduler in their context (a bare Scenario.Run with replicates). One
// process-wide pool keeps the total concurrency of independent callers
// bounded by the machine, which is the point of a unified runtime.
var defaultScheduler = sync.OnceValue(func() *Scheduler { return New(0) })

// Default returns the process-wide scheduler (GOMAXPROCS workers).
func Default() *Scheduler { return defaultScheduler() }

// ctxKey carries the ambient scheduler; workerKey marks worker goroutines.
type ctxKey struct{}
type workerKey struct{}

// With returns a ctx carrying s as the ambient scheduler for nested
// layers: work submitted under the returned ctx (replicate fan-out inside
// a batched scenario, candidate evaluation inside a search) lands on s
// instead of a fresh pool.
func With(ctx context.Context, s *Scheduler) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// From returns ctx's ambient scheduler, or the process-wide Default.
func From(ctx context.Context) *Scheduler {
	if s, ok := ctx.Value(ctxKey{}).(*Scheduler); ok {
		return s
	}
	return Default()
}

// entry is one queued item together with its submission.
type entry struct {
	sub *submission
	idx int    // index into sub.items
	seq uint64 // global FIFO tie-break within a priority
}

// entryHeap orders entries by (Priority, seq): strict priority, FIFO
// within.
type entryHeap []entry

func (h entryHeap) less(i, j int) bool {
	pi, pj := h[i].sub.items[h[i].idx].Priority, h[j].sub.items[h[j].idx].Priority
	if pi != pj {
		return pi < pj
	}
	return h[i].seq < h[j].seq
}

func (h *entryHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *entryHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && h.less(l, m) {
			m = l
		}
		if r < n && h.less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		(*h)[i], (*h)[m] = (*h)[m], (*h)[i]
		i = m
	}
}

func (h *entryHeap) push(e entry) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

// removeAt removes and returns the entry at heap position i.
func (h *entryHeap) removeAt(i int) entry {
	old := *h
	e := old[i]
	last := len(old) - 1
	old[i] = old[last]
	old[last] = entry{}
	*h = old[:last]
	if i < last {
		h.siftUp(i)
		h.siftDown(i)
	}
	return e
}

func (h *entryHeap) pop() (entry, bool) {
	if len(*h) == 0 {
		return entry{}, false
	}
	return h.removeAt(0), true
}

// popOwn removes and returns sub's highest-priority queued entry. Helpers
// joining a nested Gather use it to run their own children only: running
// arbitrary foreign work from inside an item's call chain could wait on a
// flight that chain itself leads — including flights (like the Simulated
// objective's) the scheduler cannot see. Linear scan: queues hold
// coarse-grained simulation work, never enough entries for this to
// matter.
func (h *entryHeap) popOwn(sub *submission) (entry, bool) {
	best := -1
	for i := range *h {
		if (*h)[i].sub != sub {
			continue
		}
		if best == -1 || h.less(i, best) {
			best = i
		}
	}
	if best == -1 {
		return entry{}, false
	}
	return h.removeAt(best), true
}

// submission tracks one Stream or Gather call's items and results.
type submission struct {
	ctx     context.Context
	items   []Item
	deliver func(Result) // called exactly once per item, any goroutine
}

// enqueue pushes every item of sub and wakes workers for them.
func (s *Scheduler) enqueue(sub *submission) {
	s.mu.Lock()
	for i := range sub.items {
		s.seq++
		s.queue.push(entry{sub: sub, idx: i, seq: s.seq})
	}
	queueDepth.Add(int64(len(sub.items)))
	s.spawnLocked()
	s.mu.Unlock()
}

// spawnLocked tops the pool up to the worker budget, spawning at most one
// worker per queued entry (a worker that finds the queue drained simply
// exits). Callers hold s.mu.
func (s *Scheduler) spawnLocked() {
	for n := len(s.queue); n > 0 && s.running-s.parked < s.workers; n-- {
		s.running++
		go s.worker()
	}
}

// worker drains the queue and exits when it is empty — or when the pool
// is over budget. Parking spawns replacement workers, so after an unpark
// the pool can transiently exceed its bound; the check below retires the
// excess at the next item boundary, restoring the budget.
func (s *Scheduler) worker() {
	for {
		s.mu.Lock()
		if s.running-s.parked > s.workers {
			s.running--
			s.mu.Unlock()
			return
		}
		e, ok := s.queue.pop()
		if !ok {
			s.running--
			s.mu.Unlock()
			return
		}
		queueDepth.Dec()
		s.mu.Unlock()
		s.runEntry(e)
	}
}

// park blocks the calling worker on wait() while releasing its budget
// slot, so nested waits (single-flight followers, Gather joins) never
// starve the queue of workers.
func (s *Scheduler) park(wait func()) {
	s.mu.Lock()
	s.parked++
	s.spawnLocked()
	s.mu.Unlock()
	wait()
	s.mu.Lock()
	s.parked--
	s.mu.Unlock()
}

// runEntry executes one queued item: cancellation check, single-flight
// coalescing, then delivery.
func (s *Scheduler) runEntry(e entry) {
	it := &e.sub.items[e.idx]
	ctx := e.sub.ctx
	if ctx.Err() != nil {
		e.sub.deliver(Result{Index: it.Index, Seed: it.Seed, Err: ctx.Err(), Skipped: true})
		return
	}
	if it.Key == "" {
		v, err := timedDo(markWorker(ctx), it.Do)
		e.sub.deliver(Result{Index: it.Index, Seed: it.Seed, Value: v, Err: err})
		return
	}
	s.mu.Lock()
	if c, ok := s.flight[it.Key]; ok {
		s.mu.Unlock()
		if slices.Contains(heldKeys(ctx), it.Key) {
			// The in-flight leader is this very call chain (a nested item
			// reusing its ancestor's key): waiting would deadlock, so run
			// fresh — determinism makes the value identical anyway.
			v, err := timedDo(markWorker(ctx), it.Do)
			e.sub.deliver(Result{Index: it.Index, Seed: it.Seed, Value: v, Err: err})
			return
		}
		cancelled := false
		s.park(func() {
			select {
			case <-c.done:
			case <-ctx.Done():
				cancelled = true
			}
		})
		if cancelled {
			e.sub.deliver(Result{Index: it.Index, Seed: it.Seed, Err: ctx.Err()})
			return
		}
		coalesced.Inc()
		e.sub.deliver(Result{Index: it.Index, Seed: it.Seed, Value: c.val, Err: c.err, Shared: true})
		return
	}
	c := &flightCall{done: make(chan struct{})}
	s.flight[it.Key] = c
	s.mu.Unlock()
	// The Do ctx records the held key: if this call chain fans out and
	// helps drain the queue, it must not wait on its own flight.
	c.val, c.err = timedDo(withHeldKey(markWorker(ctx), it.Key), it.Do)
	s.mu.Lock()
	delete(s.flight, it.Key)
	s.mu.Unlock()
	close(c.done)
	e.sub.deliver(Result{Index: it.Index, Seed: it.Seed, Value: c.val, Err: c.err})
}

// markWorker tags ctx so nested Gather calls recognize they already hold
// a worker slot (and must help instead of just blocking).
func markWorker(ctx context.Context) context.Context {
	if ctx.Value(workerKey{}) != nil {
		return ctx // already marked by an outer frame
	}
	return context.WithValue(ctx, workerKey{}, true)
}

// onWorker reports whether ctx belongs to a scheduler worker goroutine.
func onWorker(ctx context.Context) bool { return ctx.Value(workerKey{}) != nil }

// OnWorker reports whether ctx belongs to one of the runtime's worker
// goroutines — the caller is running inside a scheduled item. Layers use
// this to choose Gather's help-first join over consuming a Stream:
// blocking on a Stream from within a worker holds a budget slot without
// parking, which starves small pools.
func OnWorker(ctx context.Context) bool { return onWorker(ctx) }

// heldKeysKey carries the single-flight keys held by the current call
// chain: the leaders this goroutine is currently running for.
type heldKeysKey struct{}

// withHeldKey appends key to ctx's held-key chain (copy-on-write, so
// sibling chains never share backing storage).
func withHeldKey(ctx context.Context, key string) context.Context {
	held, _ := ctx.Value(heldKeysKey{}).([]string)
	held = append(held[:len(held):len(held)], key)
	return context.WithValue(ctx, heldKeysKey{}, held)
}

// heldKeys returns the single-flight keys ctx's call chain holds.
func heldKeys(ctx context.Context) []string {
	held, _ := ctx.Value(heldKeysKey{}).([]string)
	return held
}

// Gather schedules items and returns their results in Item.Index order —
// the ordered merge the determinism contract depends on. Results index by
// the items' Index fields, which must be the dense range [0, len(items)).
//
// Gather may be called from inside an item's Do (nested fan-out): the
// calling worker then helps execute queued items while it waits, so the
// pool's worker budget is respected without deadlock. Cancellation of ctx
// marks undispatched items Skipped with the ctx error; started work is
// cancelled through the ctx its Do received.
func (s *Scheduler) Gather(ctx context.Context, items []Item) []Result {
	results := make([]Result, len(items))
	var mu sync.Mutex
	remaining := len(items)
	done := make(chan struct{})
	sub := &submission{
		ctx:   ctx,
		items: items,
		deliver: func(r Result) {
			mu.Lock()
			results[r.Index] = r
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last {
				close(done)
			}
		},
	}
	if len(items) == 0 {
		return results
	}
	s.enqueue(sub)
	if onWorker(ctx) {
		// Help-first join: run our own queued children until the
		// submission completes, then park (which frees this worker's
		// budget slot, so a replacement worker covers any foreign work).
		// Helping is deliberately restricted to our own entries — running
		// arbitrary foreign work from inside this call chain could join a
		// single-flight this chain itself leads (the scheduler's keyed
		// items, or a layer's own Flight like the Simulated objective's)
		// and deadlock on it.
		for {
			select {
			case <-done:
				return results
			default:
			}
			s.mu.Lock()
			e, ok := s.queue.popOwn(sub)
			if ok {
				queueDepth.Dec()
			}
			s.mu.Unlock()
			if !ok {
				s.park(func() { <-done })
				return results
			}
			s.runEntry(e)
		}
	}
	<-done
	return results
}

// streamBuffer bounds Stream's delivery channel. The merger goroutine
// holds completed-but-unconsumed results in a growable queue, so the
// buffer only smooths handoff — it no longer scales with the batch (the
// old RunBatch allocated a whole-batch buffer up front).
const streamBuffer = 16

// Stream schedules items and returns a channel delivering each result as
// it completes (not in Index order; correlate with Result.Index). Workers
// never block on a slow or departed consumer: an internal merger queues
// pending deliveries, growing only with the actual backlog. Items never
// started because ctx was cancelled are dropped (they were never
// dispatched); items cancelled mid-run arrive with Err set. The channel
// closes once every item is accounted for.
func (s *Scheduler) Stream(ctx context.Context, items []Item) <-chan Result {
	buf := streamBuffer
	if len(items) < buf {
		buf = len(items)
	}
	out := make(chan Result, buf)
	if len(items) == 0 {
		close(out)
		return out
	}
	var mu sync.Mutex
	var pending []Result
	signal := make(chan struct{}, 1)
	sub := &submission{
		ctx:   ctx,
		items: items,
		deliver: func(r Result) {
			mu.Lock()
			pending = append(pending, r)
			mu.Unlock()
			select {
			case signal <- struct{}{}:
			default:
			}
		},
	}
	go func() {
		defer close(out)
		delivered := 0
		for delivered < len(items) {
			<-signal
			for {
				mu.Lock()
				batch := pending
				pending = nil
				mu.Unlock()
				if len(batch) == 0 {
					break
				}
				for _, r := range batch {
					delivered++
					if r.Skipped {
						continue // never dispatched: not part of the stream
					}
					out <- r
				}
			}
		}
	}()
	s.enqueue(sub)
	return out
}
