// Package power implements the paper's power-management policies: ODPM
// (on-demand power management, [25]) with keep-alive timers that hold a node
// in active mode while it participates in routing, and an always-active
// baseline. "Perfect sleep scheduling" needs no manager: it is an accounting
// oracle on the radio card (radio.Card.PerfectSleep).
package power

import (
	"time"

	"eend/internal/mac"
	"eend/internal/sim"
)

// Activity is a routing-layer event that power management reacts to.
type Activity int

// Activities (ODPM triggers, paper Section 4.1).
const (
	// ActivityData fires when the node sends, forwards or receives a
	// unicast data packet.
	ActivityData Activity = iota + 1
	// ActivityRoute fires when the node originates, forwards or receives a
	// route reply, i.e. it has been selected as a relay.
	ActivityRoute
)

// ModeSetter is the part of the MAC a manager drives. Implemented by
// *mac.MAC and by test fakes.
type ModeSetter interface {
	SetPowerMode(mac.PowerMode)
	PowerMode() mac.PowerMode
}

// Manager decides AM/PSM transitions for one node.
type Manager interface {
	// Start sets the node's initial mode.
	Start()
	// OnActivity reports a routing event.
	OnActivity(Activity)
}

// NotifyFunc, if set on a manager that supports it, is invoked after every
// actual mode transition (used by DSDVH's triggered updates).
type NotifyFunc func(mac.PowerMode)

// AlwaysActive keeps the node in AM forever (the DSR-Active baseline).
type AlwaysActive struct {
	Node ModeSetter
}

// Start implements Manager.
func (a *AlwaysActive) Start() { a.Node.SetPowerMode(mac.AM) }

// OnActivity implements Manager.
func (a *AlwaysActive) OnActivity(Activity) {}

// ODPMConfig holds the keep-alive timers.
type ODPMConfig struct {
	// DataTimeout holds the node in AM after data activity (paper: 5 s;
	// the Span-improved variant uses 0.6 s).
	DataTimeout time.Duration
	// RouteTimeout holds the node in AM after a route reply (paper: 10 s;
	// Span-improved variant: 1.2 s).
	RouteTimeout time.Duration
}

// Default ODPM keep-alive values from the paper (Section 5.2).
const (
	DefaultDataTimeout  = 5 * time.Second
	DefaultRouteTimeout = 10 * time.Second
)

func (c ODPMConfig) withDefaults() ODPMConfig {
	if c.DataTimeout <= 0 {
		c.DataTimeout = DefaultDataTimeout
	}
	if c.RouteTimeout <= 0 {
		c.RouteTimeout = DefaultRouteTimeout
	}
	return c
}

// ODPM switches a node to AM on routing activity and back to PSM when its
// keep-alive timers expire.
type ODPM struct {
	sim      *sim.Simulator
	node     ModeSetter
	cfg      ODPMConfig
	deadline sim.Time
	timer    sim.Timer
	expireFn func() // pre-bound expire so re-arming never allocates
	notify   NotifyFunc
}

var _ Manager = (*ODPM)(nil)

// NewODPM creates an on-demand power manager for the node.
func NewODPM(s *sim.Simulator, node ModeSetter, cfg ODPMConfig) *ODPM {
	o := &ODPM{sim: s, node: node, cfg: cfg.withDefaults()}
	o.expireFn = o.expire
	return o
}

// SetNotify registers a callback fired after each actual mode change.
func (o *ODPM) SetNotify(fn NotifyFunc) { o.notify = fn }

// Start implements Manager: ODPM nodes begin in power-save mode.
func (o *ODPM) Start() { o.setMode(mac.PSM) }

// OnActivity implements Manager: refresh the keep-alive and go active.
func (o *ODPM) OnActivity(a Activity) {
	var hold time.Duration
	switch a {
	case ActivityData:
		hold = o.cfg.DataTimeout
	case ActivityRoute:
		hold = o.cfg.RouteTimeout
	default:
		return
	}
	dl := o.sim.Now() + hold
	if dl > o.deadline {
		o.deadline = dl
	}
	o.setMode(mac.AM)
	o.arm()
}

// arm schedules the expiry check at the current deadline.
func (o *ODPM) arm() {
	if o.timer.Pending() && o.timer.At() <= o.deadline {
		// An earlier check exists; it will re-arm if needed.
		if o.timer.At() == o.deadline {
			return
		}
	}
	o.timer.Cancel()
	o.timer = scheduleAt(o.sim, o.deadline, o.expireFn)
}

func (o *ODPM) expire() {
	now := o.sim.Now()
	if now < o.deadline {
		o.timer = scheduleAt(o.sim, o.deadline, o.expireFn)
		return
	}
	o.setMode(mac.PSM)
}

func (o *ODPM) setMode(m mac.PowerMode) {
	if o.node.PowerMode() == m {
		return
	}
	o.node.SetPowerMode(m)
	if o.notify != nil {
		o.notify(m)
	}
}

// Deadline returns the current keep-alive deadline (for tests).
func (o *ODPM) Deadline() sim.Time { return o.deadline }
