package power

import (
	"testing"
	"time"

	"eend/internal/mac"
	"eend/internal/sim"
)

// fakeNode records mode transitions.
type fakeNode struct {
	mode        mac.PowerMode
	transitions []mac.PowerMode
}

func (f *fakeNode) SetPowerMode(m mac.PowerMode) {
	f.mode = m
	f.transitions = append(f.transitions, m)
}
func (f *fakeNode) PowerMode() mac.PowerMode { return f.mode }

func TestAlwaysActive(t *testing.T) {
	n := &fakeNode{mode: mac.PSM}
	a := &AlwaysActive{Node: n}
	a.Start()
	if n.mode != mac.AM {
		t.Fatal("AlwaysActive must start in AM")
	}
	a.OnActivity(ActivityData)
	if len(n.transitions) != 1 {
		t.Fatal("AlwaysActive must not toggle modes")
	}
}

func TestODPMStartsInPSM(t *testing.T) {
	s := sim.New(1)
	n := &fakeNode{mode: mac.AM}
	o := NewODPM(s, n, ODPMConfig{})
	o.Start()
	if n.mode != mac.PSM {
		t.Fatal("ODPM must start in PSM")
	}
}

func TestODPMDataKeepAlive(t *testing.T) {
	s := sim.New(1)
	n := &fakeNode{}
	o := NewODPM(s, n, ODPMConfig{})
	o.Start()
	s.Schedule(time.Second, func() { o.OnActivity(ActivityData) })
	s.Run(2 * time.Second)
	if n.mode != mac.AM {
		t.Fatal("node should be AM within the data keep-alive window")
	}
	s.Run(5900 * time.Millisecond) // 1 s + 5 s - epsilon
	if n.mode != mac.AM {
		t.Fatal("keep-alive expired too early")
	}
	s.Run(6100 * time.Millisecond)
	if n.mode != mac.PSM {
		t.Fatal("node should return to PSM after the 5 s data keep-alive")
	}
}

func TestODPMRouteKeepAliveLonger(t *testing.T) {
	s := sim.New(1)
	n := &fakeNode{}
	o := NewODPM(s, n, ODPMConfig{})
	o.Start()
	s.Schedule(time.Second, func() { o.OnActivity(ActivityRoute) })
	s.Run(10 * time.Second) // 1 + 10 = 11 s deadline
	if n.mode != mac.AM {
		t.Fatal("node should still be AM inside the 10 s route keep-alive")
	}
	s.Run(11100 * time.Millisecond)
	if n.mode != mac.PSM {
		t.Fatal("node should sleep after the route keep-alive")
	}
}

func TestODPMActivityExtendsDeadline(t *testing.T) {
	s := sim.New(1)
	n := &fakeNode{}
	o := NewODPM(s, n, ODPMConfig{})
	o.Start()
	// Data activity every 2 s keeps the node in AM continuously.
	for i := 1; i <= 5; i++ {
		at := time.Duration(i) * 2 * time.Second
		s.Schedule(at, func() { o.OnActivity(ActivityData) })
	}
	s.Run(14 * time.Second) // last activity at 10 s + 5 s hold = 15 s
	if n.mode != mac.AM {
		t.Fatal("continuous activity must keep the node awake")
	}
	s.Run(15100 * time.Millisecond)
	if n.mode != mac.PSM {
		t.Fatal("node should sleep 5 s after the last activity")
	}
	// Exactly one AM->PSM cycle: PSM(start), AM, PSM.
	want := []mac.PowerMode{mac.PSM, mac.AM, mac.PSM}
	if len(n.transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", n.transitions, want)
	}
	for i := range want {
		if n.transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", n.transitions, want)
		}
	}
}

func TestODPMShorterTimeoutDoesNotShrinkDeadline(t *testing.T) {
	s := sim.New(1)
	n := &fakeNode{}
	o := NewODPM(s, n, ODPMConfig{})
	o.Start()
	s.Schedule(time.Second, func() { o.OnActivity(ActivityRoute) })  // until 11 s
	s.Schedule(2*time.Second, func() { o.OnActivity(ActivityData) }) // until 7 s only
	s.Run(10900 * time.Millisecond)
	if n.mode != mac.AM {
		t.Fatal("later shorter keep-alive must not shrink the deadline")
	}
	s.Run(11100 * time.Millisecond)
	if n.mode != mac.PSM {
		t.Fatal("node should sleep at the route deadline")
	}
}

func TestODPMCustomTimeouts(t *testing.T) {
	s := sim.New(1)
	n := &fakeNode{}
	o := NewODPM(s, n, ODPMConfig{DataTimeout: 600 * time.Millisecond, RouteTimeout: 1200 * time.Millisecond})
	o.Start()
	s.Schedule(time.Second, func() { o.OnActivity(ActivityData) })
	s.Run(1500 * time.Millisecond)
	if n.mode != mac.AM {
		t.Fatal("should be AM inside 0.6 s keep-alive")
	}
	s.Run(1700 * time.Millisecond)
	if n.mode != mac.PSM {
		t.Fatal("0.6 s variant should sleep quickly")
	}
}

func TestODPMNotify(t *testing.T) {
	s := sim.New(1)
	n := &fakeNode{}
	o := NewODPM(s, n, ODPMConfig{})
	var seen []mac.PowerMode
	o.SetNotify(func(m mac.PowerMode) { seen = append(seen, m) })
	o.Start()
	s.Schedule(time.Second, func() { o.OnActivity(ActivityData) })
	s.Run(20 * time.Second)
	want := []mac.PowerMode{mac.PSM, mac.AM, mac.PSM}
	if len(seen) != len(want) {
		t.Fatalf("notify saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("notify saw %v, want %v", seen, want)
		}
	}
}

func TestODPMUnknownActivityIgnored(t *testing.T) {
	s := sim.New(1)
	n := &fakeNode{}
	o := NewODPM(s, n, ODPMConfig{})
	o.Start()
	o.OnActivity(Activity(99))
	if n.mode != mac.PSM {
		t.Fatal("unknown activity must not wake the node")
	}
}
