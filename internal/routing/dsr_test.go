package routing

import (
	"math"
	"testing"
	"time"

	"eend/internal/geom"
	"eend/internal/mac"
	"eend/internal/phy"
	"eend/internal/power"
	"eend/internal/radio"
	"eend/internal/sim"
)

// rtb is a routing testbed: real simulator, medium and MACs, with a
// protocol factory per node.
type rtb struct {
	sim       *sim.Simulator
	med       *phy.Medium
	coord     *mac.Coordinator
	macs      []*mac.MAC
	protos    []Protocol
	delivered []int // payload source ids delivered at each node
}

func newRTB(t *testing.T, seed uint64, card radio.Card, pts []geom.Point,
	mk func(env *Env) Protocol) *rtb {
	t.Helper()
	s := sim.New(seed)
	med := phy.NewMedium(s, phy.Config{RangeAt: card.RangeAt})
	coord := mac.NewCoordinator(s, 0, 0)
	tb := &rtb{sim: s, med: med, coord: coord, delivered: make([]int, len(pts))}
	for i, p := range pts {
		i := i
		var proto Protocol
		m := mac.New(s, med, coord, i, p, mac.Config{Card: card},
			func(from int, pkt *mac.Packet) { proto.HandlePacket(from, pkt) })
		env := &Env{
			ID:  i,
			Sim: s,
			MAC: m,
			PM:  &power.AlwaysActive{Node: m},
			Deliver: func(src int, payload any, bytes int) {
				tb.delivered[i]++
			},
			Bandwidth: phy.DefaultBandwidth,
		}
		proto = mk(env)
		tb.macs = append(tb.macs, m)
		tb.protos = append(tb.protos, proto)
	}
	coord.Start()
	for i := range tb.protos {
		tb.macs[i].SetPowerMode(mac.AM)
		tb.protos[i].Start()
	}
	return tb
}

func line4(spacing float64) []geom.Point {
	return []geom.Point{
		{X: 0, Y: 0}, {X: spacing, Y: 0}, {X: 2 * spacing, Y: 0}, {X: 3 * spacing, Y: 0},
	}
}

func TestDSRDiscoversRouteAndDelivers(t *testing.T) {
	tb := newRTB(t, 1, radio.Cabletron, line4(200), func(e *Env) Protocol {
		return NewDSR(e, false)
	})
	tb.sim.Schedule(10*time.Millisecond, func() {
		tb.protos[0].Send(3, 128, nil, 0)
	})
	tb.sim.Run(2 * time.Second)
	if tb.delivered[3] != 1 {
		t.Fatalf("delivered = %d, want 1", tb.delivered[3])
	}
	d := tb.protos[0].(*DSR)
	route := d.CachedRoute(3)
	want := []int{0, 1, 2, 3}
	if len(route) != len(want) {
		t.Fatalf("route = %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
	st := d.Stats()
	if st.DataSent != 1 || st.RREQSent == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMTPRvsMTPRPlusRouteShape(t *testing.T) {
	// Line 0-1-2 at 100 m spacing (Cabletron). Direct 0->2 (200 m) is in
	// range. MTPR (Eq. 10, amplifier power only) prefers two short hops:
	// 2*Pt(100) << Pt(200). MTPR+ (Eq. 11) adds Pbase+Prx per hop, which
	// dwarfs Pt on this card, so it prefers the direct route.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}

	mtpr := newRTB(t, 1, radio.Cabletron, pts, func(e *Env) Protocol { return NewMTPR(e) })
	mtpr.sim.Schedule(10*time.Millisecond, func() { mtpr.protos[0].Send(2, 128, nil, 0) })
	mtpr.sim.Run(2 * time.Second)
	if got := mtpr.protos[0].(*DSR).CachedRoute(2); len(got) != 3 {
		t.Errorf("MTPR route = %v, want the 2-hop path", got)
	}

	plus := newRTB(t, 1, radio.Cabletron, pts, func(e *Env) Protocol { return NewMTPRPlus(e) })
	plus.sim.Schedule(10*time.Millisecond, func() { plus.protos[0].Send(2, 128, nil, 0) })
	plus.sim.Run(2 * time.Second)
	if got := plus.protos[0].(*DSR).CachedRoute(2); len(got) != 2 {
		t.Errorf("MTPR+ route = %v, want the direct path", got)
	}
}

func TestDSRHAvoidsPowerSavingRelay(t *testing.T) {
	// Diamond: 0 -> {1, 2} -> 3, with 0-3 out of range. Node 1 is in PSM,
	// node 2 in AM. DSRH's h cost (Eq. 12) charges Pidle for recruiting the
	// power-saving relay, so the route must go through node 2.
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 150, Y: 100}, {X: 150, Y: -100}, {X: 300, Y: 0},
	}
	tb := newRTB(t, 1, radio.Cabletron, pts, func(e *Env) Protocol {
		return NewDSRH(e, false, false)
	})
	tb.macs[1].SetPowerMode(mac.PSM)
	tb.sim.Schedule(350*time.Millisecond, func() { tb.protos[0].Send(3, 128, nil, 0) })
	tb.sim.Run(3 * time.Second)
	route := tb.protos[0].(*DSR).CachedRoute(3)
	if len(route) != 3 || route[1] != 2 {
		t.Fatalf("route = %v, want via the active relay 2", route)
	}
	if tb.delivered[3] != 1 {
		t.Fatalf("delivered = %d, want 1", tb.delivered[3])
	}
}

func TestDSRHRateScalesCost(t *testing.T) {
	// With rate information, h scales the communication term by r/B; with
	// tiny r the PSM penalty dominates even more. Both must still deliver.
	pts := line4(150)
	tb := newRTB(t, 1, radio.Cabletron, pts, func(e *Env) Protocol {
		return NewDSRH(e, true, false)
	})
	tb.sim.Schedule(10*time.Millisecond, func() { tb.protos[0].Send(3, 128, nil, 2048) })
	tb.sim.Run(2 * time.Second)
	if tb.delivered[3] != 1 {
		t.Fatalf("DSRH(rate) delivered = %d, want 1", tb.delivered[3])
	}
}

func TestRERRPurgesCachedRoutes(t *testing.T) {
	tb := newRTB(t, 1, radio.Cabletron, line4(200), func(e *Env) Protocol {
		return NewDSR(e, false)
	})
	d := tb.protos[0].(*DSR)
	d.cache[3] = &cachedRoute{path: []int{0, 1, 2, 3}}
	d.cache[2] = &cachedRoute{path: []int{0, 1, 2}}
	d.handleRERR(&rerr{From: 1, To: 2, Dst: 0, Route: []int{0, 1, 2, 3}, Hop: 0})
	if d.CachedRoute(3) != nil || d.CachedRoute(2) != nil {
		t.Fatal("routes through the broken link must be purged")
	}
}

func TestRERRKeepsUnrelatedRoutes(t *testing.T) {
	tb := newRTB(t, 1, radio.Cabletron, line4(200), func(e *Env) Protocol {
		return NewDSR(e, false)
	})
	d := tb.protos[0].(*DSR)
	d.cache[3] = &cachedRoute{path: []int{0, 1, 3}}
	d.handleRERR(&rerr{From: 1, To: 2, Dst: 0, Route: []int{0, 1, 2}, Hop: 0})
	if d.CachedRoute(3) == nil {
		t.Fatal("route not using the broken link must survive")
	}
}

func TestDiscoveryRetriesAndGivesUp(t *testing.T) {
	// Node 1 is unreachable: the source must retry discovery with backoff
	// and eventually drop the buffered packets.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 5000, Y: 0}}
	tb := newRTB(t, 1, radio.Cabletron, pts, func(e *Env) Protocol {
		return NewDSR(e, false)
	})
	tb.sim.Schedule(10*time.Millisecond, func() {
		tb.protos[0].Send(1, 128, nil, 0)
		tb.protos[0].Send(1, 128, nil, 0)
	})
	tb.sim.Run(20 * time.Second)
	d := tb.protos[0].(*DSR)
	st := d.Stats()
	if st.RREQSent != discoveryRetries {
		t.Fatalf("RREQSent = %d, want %d (initial + retries)", st.RREQSent, discoveryRetries)
	}
	if st.DataDropped != 2 {
		t.Fatalf("DataDropped = %d, want both buffered packets", st.DataDropped)
	}
	if len(d.pending) != 0 {
		t.Fatal("discovery state must be cleaned up")
	}
}

func TestSendBufferCapDropsOldest(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 5000, Y: 0}}
	tb := newRTB(t, 1, radio.Cabletron, pts, func(e *Env) Protocol {
		return NewDSR(e, false)
	})
	tb.sim.Schedule(10*time.Millisecond, func() {
		for i := 0; i < sendBufferCap+5; i++ {
			tb.protos[0].Send(1, 128, nil, 0)
		}
	})
	tb.sim.Run(100 * time.Millisecond)
	d := tb.protos[0].(*DSR)
	if got := len(d.pending[1].buffer); got != sendBufferCap {
		t.Fatalf("buffer len = %d, want cap %d", got, sendBufferCap)
	}
	if d.Stats().DataDropped != 5 {
		t.Fatalf("DataDropped = %d, want 5 overflow drops", d.Stats().DataDropped)
	}
}

func TestSelfSendDeliversLocally(t *testing.T) {
	tb := newRTB(t, 1, radio.Cabletron, line4(200), func(e *Env) Protocol {
		return NewDSR(e, false)
	})
	tb.sim.Schedule(10*time.Millisecond, func() { tb.protos[0].Send(0, 64, nil, 0) })
	tb.sim.Run(time.Second)
	if tb.delivered[0] != 1 {
		t.Fatalf("self-send delivered = %d, want 1", tb.delivered[0])
	}
	if tb.protos[0].(*DSR).Stats().RREQSent != 0 {
		t.Fatal("self-send must not trigger discovery")
	}
}

func TestTITANParticipationBiasedByBackbone(t *testing.T) {
	// A power-saving node surrounded by active (backbone) neighbors should
	// often decline route discovery; with no backbone it must always join.
	pts := []geom.Point{
		{X: 0, Y: 0},
		{X: 100, Y: 0}, {X: 0, Y: 100}, {X: 100, Y: 100}, {X: 50, Y: 50},
	}
	tb := newRTB(t, 1, radio.Cabletron, pts, func(e *Env) Protocol {
		return NewTITAN(e, false)
	})
	titan := tb.protos[4].(*DSR)

	// No backbone: all neighbors in PSM.
	for _, m := range tb.macs {
		m.SetPowerMode(mac.PSM)
	}
	for i := 0; i < 50; i++ {
		if !titan.v.Participate(titan) {
			t.Fatal("with no backbone the node must always participate")
		}
	}

	// Strong backbone: all neighbors AM, node 4 in PSM.
	for i := 0; i < 4; i++ {
		tb.macs[i].SetPowerMode(mac.AM)
	}
	declined := 0
	for i := 0; i < 200; i++ {
		if !titan.v.Participate(titan) {
			declined++
		}
	}
	if declined < 100 {
		t.Fatalf("declined only %d/200 with a full backbone; want mostly declining", declined)
	}

	// Active nodes always participate.
	tb.macs[4].SetPowerMode(mac.AM)
	for i := 0; i < 50; i++ {
		if !titan.v.Participate(titan) {
			t.Fatal("AM nodes always participate")
		}
	}
}

func TestHCostProperties(t *testing.T) {
	tb := newRTB(t, 1, radio.Cabletron, line4(150), func(e *Env) Protocol {
		return NewDSRH(e, false, false)
	})
	d := tb.protos[1].(*DSR)
	// AM: plain c(u,v) >= 0.
	am := hCost(d, 0, 1.0)
	if am < 0 {
		t.Fatalf("h cost negative: %v", am)
	}
	// PSM adds exactly Pidle.
	tb.macs[1].SetPowerMode(mac.PSM)
	psm := hCost(d, 0, 1.0)
	if diff := psm - am - radio.Cabletron.Idle; math.Abs(diff) > 1e-12 {
		t.Fatalf("PSM penalty = %v, want Pidle %v", psm-am, radio.Cabletron.Idle)
	}
	// Smaller rate fraction shrinks the communication term.
	tb.macs[1].SetPowerMode(mac.AM)
	small := hCost(d, 0, 0.01)
	if small >= am {
		t.Fatalf("rb=0.01 cost %v should be below rb=1 cost %v", small, am)
	}
}

func TestCostBasedRREQPrefersCheaperLateRoute(t *testing.T) {
	// Asymmetric diamond: 0 -> 1 -> 3 uses two long hops; 0 -> 2 -> 3 two
	// short ones. For MTPR the short-hop route must win even though both
	// RREQ copies race.
	pts := []geom.Point{
		{X: 0, Y: 0}, {X: 120, Y: 120}, {X: 120, Y: -40}, {X: 240, Y: 0},
	}
	tb := newRTB(t, 3, radio.Cabletron, pts, func(e *Env) Protocol { return NewMTPR(e) })
	tb.sim.Schedule(10*time.Millisecond, func() { tb.protos[0].Send(3, 128, nil, 0) })
	tb.sim.Run(2 * time.Second)
	route := tb.protos[0].(*DSR).CachedRoute(3)
	if len(route) != 3 || route[1] != 2 {
		t.Fatalf("route = %v, want via the cheaper relay 2", route)
	}
}

func TestVariantNames(t *testing.T) {
	envs := func() *Env {
		tb := newRTB(t, 1, radio.Cabletron, []geom.Point{{X: 0, Y: 0}}, func(e *Env) Protocol {
			return NewDSR(e, false)
		})
		return tb.protos[0].(*DSR).env
	}
	e := envs()
	cases := map[string]Protocol{
		"DSR":          NewDSR(e, false),
		"DSR-PC":       NewDSR(e, true),
		"MTPR-PC":      NewMTPR(e),
		"MTPR+-PC":     NewMTPRPlus(e),
		"DSRH(norate)": NewDSRH(e, false, false),
		"DSRH(rate)":   NewDSRH(e, true, false),
		"TITAN":        NewTITAN(e, false),
		"TITAN-PC":     NewTITAN(e, true),
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name = %q, want %q", p.Name(), want)
		}
	}
}

func TestDSDVNames(t *testing.T) {
	tb := newRTB(t, 1, radio.Cabletron, []geom.Point{{X: 0, Y: 0}}, func(e *Env) Protocol {
		return NewDSDV(e, false)
	})
	e := tb.protos[0].(*DSDV).env
	if got := NewDSDV(e, false).Name(); got != "DSDV" {
		t.Errorf("got %q", got)
	}
	if got := NewDSDV(e, true).Name(); got != "DSDV-PC" {
		t.Errorf("got %q", got)
	}
	if got := NewDSDVH(e, false).Name(); got != "DSDVH" {
		t.Errorf("got %q", got)
	}
}

func TestDSDVNeighborLostPoisonsRoutes(t *testing.T) {
	tb := newRTB(t, 1, radio.Cabletron, line4(200), func(e *Env) Protocol {
		return NewDSDV(e, false)
	})
	d := tb.protos[0].(*DSDV)
	d.table[2] = &dsdvEntry{next: 1, metric: 2, seq: 4}
	d.table[3] = &dsdvEntry{next: 1, metric: 3, seq: 6}
	d.neighborLost(1)
	for _, dst := range []int{2, 3} {
		e := d.table[dst]
		if !math.IsInf(e.metric, 1) {
			t.Errorf("route to %d not poisoned", dst)
		}
		if e.seq%2 == 0 {
			t.Errorf("broken route to %d must carry an odd sequence", dst)
		}
	}
}

func TestDSDVUpdateRules(t *testing.T) {
	tb := newRTB(t, 1, radio.Cabletron, line4(200), func(e *Env) Protocol {
		return NewDSDV(e, false)
	})
	d := tb.protos[0].(*DSDV)
	d.Start()

	// New destination learned.
	d.handleUpdate(1, &dsdvUpdate{entries: []advEntry{{dst: 3, metric: 2, seq: 10}}})
	if e := d.table[3]; e == nil || e.next != 1 || e.metric != 3 {
		t.Fatalf("entry = %+v", d.table[3])
	}
	// Same seq, worse metric: ignored.
	d.handleUpdate(2, &dsdvUpdate{entries: []advEntry{{dst: 3, metric: 5, seq: 10}}})
	if d.table[3].next != 1 {
		t.Fatal("worse same-seq advertisement must not replace route")
	}
	// Same seq, better metric: adopted.
	d.handleUpdate(2, &dsdvUpdate{entries: []advEntry{{dst: 3, metric: 1, seq: 10}}})
	if d.table[3].next != 2 || d.table[3].metric != 2 {
		t.Fatalf("better same-seq advertisement should win: %+v", d.table[3])
	}
	// Newer seq wins regardless of metric.
	d.handleUpdate(1, &dsdvUpdate{entries: []advEntry{{dst: 3, metric: 9, seq: 12}}})
	if d.table[3].next != 1 || d.table[3].metric != 10 {
		t.Fatalf("newer seq should win: %+v", d.table[3])
	}
	// Broken advertisement from a node that is not our next hop: ignored.
	d.handleUpdate(2, &dsdvUpdate{entries: []advEntry{{dst: 3, metric: math.Inf(1), seq: 13}}})
	if math.IsInf(d.table[3].metric, 1) {
		t.Fatal("unrelated broken advertisement must not poison our route")
	}
	// Own entry never overwritten.
	d.handleUpdate(1, &dsdvUpdate{entries: []advEntry{{dst: 0, metric: 7, seq: 99}}})
	if d.table[0].metric != 0 || d.table[0].next != 0 {
		t.Fatal("self entry must be immutable")
	}
}
