package routing

import (
	"testing"
)

func TestIndexOf(t *testing.T) {
	path := []int{3, 1, 4, 1, 5}
	if got := indexOf(path, 4); got != 2 {
		t.Errorf("indexOf(4) = %d, want 2", got)
	}
	if got := indexOf(path, 1); got != 1 {
		t.Errorf("indexOf(1) = %d, want first occurrence 1", got)
	}
	if got := indexOf(path, 9); got != -1 {
		t.Errorf("indexOf(9) = %d, want -1", got)
	}
	if got := indexOf(nil, 0); got != -1 {
		t.Errorf("indexOf(nil) = %d, want -1", got)
	}
}

func TestHasLink(t *testing.T) {
	path := []int{0, 1, 2, 3}
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true},
		{1, 0, true}, // undirected
		{2, 3, true},
		{0, 2, false}, // not adjacent
		{3, 0, false},
		{5, 6, false},
	}
	for _, c := range cases {
		if got := hasLink(path, c.u, c.v); got != c.want {
			t.Errorf("hasLink(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
	if hasLink([]int{7}, 7, 7) {
		t.Error("single-node path has no links")
	}
}

func TestDataPacketBytes(t *testing.T) {
	p := &dataPacket{AppBytes: 128}
	if got := p.bytes(); got != dataHeaderBytes+128 {
		t.Errorf("bytes = %d, want %d", got, dataHeaderBytes+128)
	}
	p.Route = []int{0, 1, 2}
	if got := p.bytes(); got != dataHeaderBytes+128+3*perHopBytes {
		t.Errorf("bytes with route = %d", got)
	}
}

func TestRREQBytesGrowWithPath(t *testing.T) {
	r := &rreq{Path: []int{0}}
	small := r.bytes()
	r.Path = []int{0, 1, 2, 3}
	if r.bytes() <= small {
		t.Error("RREQ size must grow with the accumulated path")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{DataSent: 1, DataForwarded: 2, DataDelivered: 3, DataDropped: 4,
		RREQSent: 5, RREPSent: 6, RERRSent: 7, UpdatesSent: 8}
	b := a
	a.Add(b)
	if a.DataSent != 2 || a.UpdatesSent != 16 || a.RERRSent != 14 {
		t.Errorf("Stats.Add wrong: %+v", a)
	}
}
