package routing

import (
	"math"
	"sort"
	"time"

	"eend/internal/mac"
	"eend/internal/power"
	"eend/internal/sim"
)

// DSDV timing constants (ns-2 defaults the paper builds on).
const (
	dsdvPeriod     = 15 * time.Second
	dsdvTrigMinGap = 1 * time.Second
	dsdvDataTTL    = 32
)

// dsdvEntry is one routing-table row.
type dsdvEntry struct {
	next   int
	metric float64 // hops (DSDV) or accumulated h cost (DSDVH)
	seq    uint64  // destination sequence number; odd marks a broken route
}

// advEntry is one advertised row in an update packet.
type advEntry struct {
	dst    int
	metric float64
	seq    uint64
}

// dsdvUpdate is a (full or triggered) route update broadcast.
type dsdvUpdate struct {
	entries []advEntry
}

func (u *dsdvUpdate) bytes() int { return updateBaseBytes + perEntryBytes*len(u.entries) }

// DSDV is the proactive distance-vector protocol; with HCost it becomes
// DSDVH, the paper's proactive joint-optimization protocol (Section 4.2):
// the metric accumulates h(u,v,r) instead of hop count and route updates are
// also triggered when a node's power-management state changes.
type DSDV struct {
	env *Env

	// HCost selects the DSDVH metric.
	hCost bool
	// PowerControl transmits data at learned minimum power.
	powerControl bool

	table      map[int]*dsdvEntry
	mySeq      uint64
	lastTrig   sim.Time
	trigArm    sim.Timer
	periodicFn func() // pre-bound periodic so the repeating dump never allocates

	stats Stats
}

var _ Protocol = (*DSDV)(nil)

// NewDSDV returns plain DSDV (hop-count metric).
func NewDSDV(env *Env, powerControl bool) *DSDV {
	return &DSDV{env: env, powerControl: powerControl, table: make(map[int]*dsdvEntry)}
}

// NewDSDVH returns DSDVH, the proactive joint-optimization variant. Wire its
// PMChanged method to the power manager's notify hook so that
// power-management transitions trigger route updates (the paper: "a route
// update is ... needed when ... the power management state of a node
// changes").
func NewDSDVH(env *Env, powerControl bool) *DSDV {
	return &DSDV{env: env, hCost: true, powerControl: powerControl, table: make(map[int]*dsdvEntry)}
}

// Name implements Protocol.
func (d *DSDV) Name() string {
	name := "DSDV"
	if d.hCost {
		name = "DSDVH"
	}
	if d.powerControl {
		name += "-PC"
	}
	return name
}

// Stats implements Protocol.
func (d *DSDV) Stats() Stats { return d.stats }

// Start implements Protocol: install the self route and begin periodic
// full-table dumps at a phase chosen randomly to desynchronize nodes.
func (d *DSDV) Start() {
	d.table[d.env.ID] = &dsdvEntry{next: d.env.ID, metric: 0, seq: 0}
	d.periodicFn = d.periodic
	first := jitter(d.env.RNG(), dsdvPeriod)
	schedule(d.env.Sim, first, d.periodicFn)
}

func (d *DSDV) periodic() {
	d.mySeq += 2
	d.table[d.env.ID].seq = d.mySeq
	d.broadcastFull()
	schedule(d.env.Sim, dsdvPeriod, d.periodicFn)
}

func (d *DSDV) broadcastFull() {
	entries := make([]advEntry, 0, len(d.table))
	dsts := make([]int, 0, len(d.table))
	for dst := range d.table {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	for _, dst := range dsts {
		e := d.table[dst]
		entries = append(entries, advEntry{dst: dst, metric: e.metric, seq: e.seq})
	}
	d.sendUpdate(entries)
}

func (d *DSDV) sendUpdate(entries []advEntry) {
	if len(entries) == 0 {
		return
	}
	d.stats.UpdatesSent++
	u := &dsdvUpdate{entries: entries}
	d.env.MAC.SendBroadcast(&mac.Packet{
		Kind: mac.PacketControl, Bytes: u.bytes(), Payload: u,
	}, nil)
}

// trigger schedules a rate-limited triggered full update.
func (d *DSDV) trigger() {
	if d.trigArm.Pending() {
		return
	}
	now := d.env.Sim.Now()
	wait := sim.Time(0)
	if next := d.lastTrig + dsdvTrigMinGap; next > now {
		wait = next - now
	}
	d.trigArm = schedule(d.env.Sim, wait, func() {
		d.lastTrig = d.env.Sim.Now()
		d.broadcastFull()
	})
}

// PMChanged is DSDVH's power-management hook: a mode transition changes the
// node's h cost for its neighbors, so a triggered update advertises it.
func (d *DSDV) PMChanged(mac.PowerMode) {
	if d.hCost {
		d.trigger()
	}
}

// linkCost is the metric increment for routing through neighbor n.
func (d *DSDV) linkCost(n int) float64 {
	if !d.hCost {
		return 1
	}
	card := d.env.MAC.Card()
	c := d.env.MAC.LinkTxPower(n) + card.Recv - 2*card.Idle
	if c < 0 {
		c = 0
	}
	if d.env.MAC.PeerPowerMode(n) == mac.PSM {
		// Recruiting a power-saving relay costs its idle power (Eq. 12).
		c += card.Idle
	}
	return c
}

// HandlePacket dispatches packets handed up by the MAC.
func (d *DSDV) HandlePacket(from int, pkt *mac.Packet) {
	switch msg := pkt.Payload.(type) {
	case *dsdvUpdate:
		d.handleUpdate(from, msg)
	case *dataPacket:
		d.forward(msg)
	}
}

func (d *DSDV) handleUpdate(from int, u *dsdvUpdate) {
	changed := false
	cost := d.linkCost(from)
	for _, adv := range u.entries {
		if adv.dst == d.env.ID {
			continue
		}
		cand := adv.metric + cost
		if math.IsInf(adv.metric, 1) {
			cand = math.Inf(1)
		}
		cur, ok := d.table[adv.dst]
		switch {
		case !ok:
			d.table[adv.dst] = &dsdvEntry{next: from, metric: cand, seq: adv.seq}
			changed = true
		case adv.seq > cur.seq:
			if cur.next != from && math.IsInf(cand, 1) {
				// Newer broken advertisement for a route we don't use.
				continue
			}
			if cur.metric != cand || cur.next != from {
				changed = true
			}
			cur.next, cur.metric, cur.seq = from, cand, adv.seq
		case adv.seq == cur.seq && cand < cur.metric:
			cur.next, cur.metric = from, cand
			changed = true
		}
	}
	if changed {
		d.trigger()
	}
}

// Send implements Protocol.
func (d *DSDV) Send(dst int, bytes int, payload any, rate float64) {
	d.stats.DataSent++
	d.env.PM.OnActivity(power.ActivityData)
	pkt := &dataPacket{
		Src: d.env.ID, Dst: dst, AppBytes: bytes, Payload: payload,
		Rate: rate, TTL: dsdvDataTTL,
	}
	if dst == d.env.ID {
		d.deliver(pkt)
		return
	}
	d.forward(pkt)
}

func (d *DSDV) forward(pkt *dataPacket) {
	if pkt.Dst == d.env.ID {
		d.deliver(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		d.stats.DataDropped++
		return
	}
	e, ok := d.table[pkt.Dst]
	if !ok || math.IsInf(e.metric, 1) {
		d.stats.DataDropped++
		return
	}
	if pkt.Src != d.env.ID {
		d.stats.DataForwarded++
		d.env.PM.OnActivity(power.ActivityData)
	}
	next := e.next
	fwd := *pkt
	var txPower float64
	if d.powerControl {
		txPower = d.env.MAC.TxPowerFor(next)
	}
	d.env.MAC.SendUnicast(next, &mac.Packet{
		Kind: mac.PacketData, Bytes: fwd.bytes(), Payload: &fwd,
	}, txPower, func(ok bool) {
		if !ok {
			d.neighborLost(next)
		}
	})
}

func (d *DSDV) deliver(pkt *dataPacket) {
	d.stats.DataDelivered++
	d.env.PM.OnActivity(power.ActivityData)
	if d.env.Deliver != nil {
		d.env.Deliver(pkt.Src, pkt.Payload, pkt.AppBytes)
	}
}

// neighborLost invalidates all routes through a next hop that failed at the
// MAC layer and advertises the breakage (odd sequence numbers).
func (d *DSDV) neighborLost(n int) {
	d.stats.DataDropped++
	changed := false
	for dst, e := range d.table {
		if dst != d.env.ID && e.next == n && !math.IsInf(e.metric, 1) {
			e.metric = math.Inf(1)
			e.seq++ // odd: broken
			changed = true
		}
	}
	if changed {
		d.trigger()
	}
}

// Table returns a copy of the routing table (for tests).
func (d *DSDV) Table() map[int]struct {
	Next   int
	Metric float64
	Seq    uint64
} {
	out := make(map[int]struct {
		Next   int
		Metric float64
		Seq    uint64
	}, len(d.table))
	for dst, e := range d.table {
		out[dst] = struct {
			Next   int
			Metric float64
			Seq    uint64
		}{e.next, e.metric, e.seq}
	}
	return out
}
