// Package routing implements the paper's six routing protocols on top of the
// MAC:
//
//   - DSR: reactive shortest-path source routing (the baseline relay
//     selector for the idling-energy-first approach, Section 4.3);
//   - MTPR and MTPR+: reactive energy-aware routing with the cost functions
//     of Eqs. 10-11 (communication-energy-first, Section 4.1);
//   - DSRH rate/norate: reactive joint optimization using the h(u,v,r) cost
//     of Eq. 12 (Section 4.2);
//   - DSDV and DSDVH: proactive distance vector, hop count and h-cost
//     metrics respectively (Section 4.2);
//   - TITAN: DSR-style discovery with backbone-biased probabilistic RREQ
//     participation (Section 4.3, [21]).
//
// An orthogonal power-control (PC) flag makes a protocol transmit data
// frames at the per-neighbor minimum power learned from the RTS/CTS
// exchange; without it data goes at maximum power.
package routing

import (
	"math/rand/v2"
	"time"

	"eend/internal/mac"
	"eend/internal/power"
	"eend/internal/sim"
)

// Env is the per-node environment a protocol runs in.
type Env struct {
	ID  int
	Sim *sim.Simulator
	MAC *mac.MAC
	PM  power.Manager
	// Deliver hands a received application payload to the local sink.
	Deliver func(src int, payload any, bytes int)
	// Bandwidth is the channel bit rate B used by the h(u,v,r) cost.
	Bandwidth float64
}

// RNG returns the simulation RNG.
func (e *Env) RNG() *rand.Rand { return e.Sim.RNG() }

// Protocol is a network-layer routing protocol instance bound to one node.
type Protocol interface {
	// Name identifies the protocol stack variant (e.g. "TITAN-PC").
	Name() string
	// Start schedules the protocol's initial activity.
	Start()
	// Send originates an application payload of the given size to dst.
	// rate is the flow's bit rate (bit/s) when known, else 0.
	Send(dst int, bytes int, payload any, rate float64)
	// HandlePacket processes a network-layer packet handed up by the MAC.
	HandlePacket(from int, pkt *mac.Packet)
	// Stats returns the protocol counters.
	Stats() Stats
}

// Stats counts routing-layer activity on one node.
type Stats struct {
	DataSent      uint64 `json:"data_sent"`      // packets originated here
	DataForwarded uint64 `json:"data_forwarded"` // packets relayed here
	DataDelivered uint64 `json:"data_delivered"` // packets delivered to the local sink
	DataDropped   uint64 `json:"data_dropped"`   // no-route, buffer, TTL or link-failure drops
	RREQSent      uint64 `json:"rreq_sent"`
	RREPSent      uint64 `json:"rrep_sent"`
	RERRSent      uint64 `json:"rerr_sent"`
	UpdatesSent   uint64 `json:"updates_sent"` // DSDV(H) route updates broadcast
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.DataSent += o.DataSent
	s.DataForwarded += o.DataForwarded
	s.DataDelivered += o.DataDelivered
	s.DataDropped += o.DataDropped
	s.RREQSent += o.RREQSent
	s.RREPSent += o.RREPSent
	s.RERRSent += o.RERRSent
	s.UpdatesSent += o.UpdatesSent
}

// Network-layer sizes in bytes.
const (
	dataHeaderBytes = 20 // fixed IP-like header
	perHopBytes     = 4  // per-address overhead in source routes / paths
	rreqBaseBytes   = 16
	rrepBaseBytes   = 16
	rerrBytes       = 20
	updateBaseBytes = 8
	perEntryBytes   = 12 // per destination entry in a DSDV update
)

// dataPacket is the network-layer data unit.
type dataPacket struct {
	Src, Dst int
	Seq      uint64
	AppBytes int
	Payload  any
	Rate     float64 // flow rate for DSRH(rate); 0 if unknown

	// Source routing (DSR family): full path Src..Dst and the index of the
	// node currently holding the packet. DSDV leaves Route nil.
	Route []int
	Hop   int

	TTL int
}

// bytes returns the on-air network-layer size of the packet.
func (p *dataPacket) bytes() int {
	return dataHeaderBytes + p.AppBytes + perHopBytes*len(p.Route)
}

// jitter returns a uniform random delay in [0, max).
func jitter(rng *rand.Rand, max time.Duration) time.Duration {
	return time.Duration(rng.Int64N(int64(max)))
}

// indexOf returns the position of id in path, or -1.
func indexOf(path []int, id int) int {
	for i, v := range path {
		if v == id {
			return i
		}
	}
	return -1
}

// hasLink reports whether path contains u,v adjacently in either order.
func hasLink(path []int, u, v int) bool {
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if (a == u && b == v) || (a == v && b == u) {
			return true
		}
	}
	return false
}
