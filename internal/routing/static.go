package routing

import (
	"eend/internal/mac"
	"eend/internal/power"
)

// Static is a routing protocol with no control plane at all: every route is
// pinned at construction time. It exists to put *designs* — solutions of the
// formal network design problem (one route per demand, Section 3) — in
// front of the packet-level simulator: the opt subsystem evaluates candidate
// designs by simulating them under Static routing, so the measured energy
// reflects exactly the relays the design keeps awake and the links it
// crosses, with MAC/PSM overheads included and no discovery traffic.
//
// Packets are source-routed along the pinned path, DSR-style. There is no
// route repair: a MAC-layer delivery failure drops the packet and counts it
// in Stats.DataDropped, because a static design's performance under failure
// is part of what is being measured.
type Static struct {
	env          *Env
	powerControl bool
	// routes maps a destination to the pinned path (starting at this node)
	// for packets originated here. Forwarders follow the packet's embedded
	// route and need no table.
	routes map[int][]int
	stats  Stats
	seq    uint64
}

// NewStatic returns a Static protocol instance for one node. routes holds
// the full route set of the design (each a node path src..dst); the node
// keeps the ones that originate at it. When two routes share an origin and
// destination, the later one wins — the design vocabulary has one route per
// demand, and demands with identical endpoints are interchangeable here.
func NewStatic(env *Env, routes [][]int, powerControl bool) *Static {
	s := &Static{
		env:          env,
		powerControl: powerControl,
		routes:       make(map[int][]int),
	}
	for _, r := range routes {
		if len(r) >= 1 && r[0] == env.ID {
			s.routes[r[len(r)-1]] = r
		}
	}
	return s
}

// Name identifies the stack variant.
func (s *Static) Name() string {
	if s.powerControl {
		return "Static-PC"
	}
	return "Static"
}

// Start is a no-op: a static design has no control plane to boot.
func (s *Static) Start() {}

// Stats returns the protocol counters.
func (s *Static) Stats() Stats { return s.stats }

// Send originates an application payload along the pinned route to dst. A
// destination the design has no route for is dropped immediately.
func (s *Static) Send(dst int, bytes int, payload any, rate float64) {
	s.stats.DataSent++
	s.env.PM.OnActivity(power.ActivityData)
	s.seq++
	pkt := &dataPacket{
		Src: s.env.ID, Dst: dst, Seq: s.seq,
		AppBytes: bytes, Payload: payload, Rate: rate, TTL: dataTTL,
	}
	if dst == s.env.ID {
		s.deliver(pkt)
		return
	}
	route, ok := s.routes[dst]
	if !ok {
		s.stats.DataDropped++
		return
	}
	pkt.Route = route
	pkt.Hop = 0
	s.forward(pkt)
}

// HandlePacket processes a network-layer packet handed up by the MAC.
func (s *Static) HandlePacket(from int, pkt *mac.Packet) {
	data, ok := pkt.Payload.(*dataPacket)
	if !ok {
		return
	}
	s.forward(data)
}

// forward moves the packet one hop along its embedded route, or delivers it.
func (s *Static) forward(pkt *dataPacket) {
	if pkt.Dst == s.env.ID {
		s.deliver(pkt)
		return
	}
	i := pkt.Hop
	if i >= len(pkt.Route) || pkt.Route[i] != s.env.ID {
		i = indexOf(pkt.Route, s.env.ID)
		if i < 0 {
			s.stats.DataDropped++
			return
		}
	}
	if i+1 >= len(pkt.Route) {
		s.stats.DataDropped++
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		s.stats.DataDropped++
		return
	}
	if pkt.Src != s.env.ID {
		s.stats.DataForwarded++
		s.env.PM.OnActivity(power.ActivityData)
	}
	next := pkt.Route[i+1]
	fwd := *pkt
	fwd.Hop = i + 1
	var txPower float64
	if s.powerControl {
		txPower = s.env.MAC.TxPowerFor(next)
	}
	s.env.MAC.SendUnicast(next, &mac.Packet{
		Kind: mac.PacketData, Bytes: fwd.bytes(), Payload: &fwd,
	}, txPower, func(ok bool) {
		if !ok {
			// No repair: a static design fails where it fails.
			s.stats.DataDropped++
		}
	})
}

// deliver hands the payload to the local sink.
func (s *Static) deliver(pkt *dataPacket) {
	s.stats.DataDelivered++
	s.env.PM.OnActivity(power.ActivityData)
	if s.env.Deliver != nil {
		s.env.Deliver(pkt.Src, pkt.Payload, pkt.AppBytes)
	}
}
