package routing

import (
	"math"
	"time"

	"eend/internal/mac"
	"eend/internal/power"
	"eend/internal/sim"
)

// DSR discovery constants.
const (
	rreqTTL          = 16
	rreqJitterMax    = 10 * time.Millisecond
	discoveryTimeout = 500 * time.Millisecond
	discoveryRetries = 3
	sendBufferCap    = 20
	dataTTL          = 64
)

// Variant parameterizes the DSR engine into the paper's reactive protocols.
type Variant struct {
	// BaseName of the protocol (e.g. "MTPR"); "-PC" is appended when
	// PowerControl is set.
	BaseName string

	// LinkCost returns the discovery cost of the link from->me, evaluated
	// at the receiving node (paper: "updates the cost using f(u,v)").
	// nil means hop count (plain DSR, TITAN).
	LinkCost func(d *DSR, from int, req *rreq) float64

	// CostBased protocols rebroadcast duplicate RREQs that advertise a
	// lower cost and answer them with additional RREPs (MTPR, MTPR+, DSRH).
	CostBased bool

	// Participate decides whether a non-target node joins route discovery
	// (TITAN's probabilistic backbone bias). nil means always.
	Participate func(d *DSR) bool

	// ForwardDelay adds protocol-specific RREQ forwarding delay on top of
	// the random jitter (TITAN defers power-saving nodes). nil means none.
	ForwardDelay func(d *DSR) time.Duration

	// PowerControl transmits data frames at the learned per-neighbor
	// minimum power instead of maximum power.
	PowerControl bool
}

// rreq is a route request, flooded from the origin.
type rreq struct {
	Origin, Target int
	ID             uint64
	Path           []int // nodes traversed so far, origin first
	Cost           float64
	Rate           float64
	TTL            int
}

func (r *rreq) bytes() int { return rreqBaseBytes + perHopBytes*len(r.Path) }

// rrep carries a discovered route back to the origin along the reverse path.
type rrep struct {
	Origin, Target int
	ID             uint64
	Route          []int // full path origin..target
	Cost           float64
	Hop            int // index of the node currently holding the reply
}

func (r *rrep) bytes() int { return rrepBaseBytes + perHopBytes*len(r.Route) }

// rerr reports a broken link back to a packet source.
type rerr struct {
	From, To int // the broken link
	Dst      int // the source being notified
	Route    []int
	Hop      int
}

type reqKey struct {
	origin int
	id     uint64
}

type cachedRoute struct {
	path []int
	cost float64
}

type discovery struct {
	tries  int
	timer  sim.Timer
	buffer []*dataPacket
}

// DSR is the reactive source-routing engine, specialized by a Variant into
// DSR, MTPR, MTPR+, DSRH and TITAN.
type DSR struct {
	env *Env
	v   Variant

	cache    map[int]*cachedRoute
	seen     map[reqKey]float64 // best cost seen per request (math.Inf: none)
	answered map[reqKey]float64 // best cost answered (targets only)
	pending  map[int]*discovery
	reqID    uint64
	seq      uint64

	stats Stats
}

var _ Protocol = (*DSR)(nil)

// NewDSRVariant builds a DSR-engine protocol from a variant description.
func NewDSRVariant(env *Env, v Variant) *DSR {
	return &DSR{
		env:      env,
		v:        v,
		cache:    make(map[int]*cachedRoute),
		seen:     make(map[reqKey]float64),
		answered: make(map[reqKey]float64),
		pending:  make(map[int]*discovery),
	}
}

// Name implements Protocol.
func (d *DSR) Name() string {
	if d.v.PowerControl {
		return d.v.BaseName + "-PC"
	}
	return d.v.BaseName
}

// Start implements Protocol. DSR is fully reactive: nothing to schedule.
func (d *DSR) Start() {}

// Stats implements Protocol.
func (d *DSR) Stats() Stats { return d.stats }

// Send implements Protocol.
func (d *DSR) Send(dst int, bytes int, payload any, rate float64) {
	d.stats.DataSent++
	d.env.PM.OnActivity(power.ActivityData)
	d.seq++
	pkt := &dataPacket{
		Src: d.env.ID, Dst: dst, Seq: d.seq,
		AppBytes: bytes, Payload: payload, Rate: rate, TTL: dataTTL,
	}
	if dst == d.env.ID {
		d.deliver(pkt)
		return
	}
	if r, ok := d.cache[dst]; ok {
		pkt.Route = r.path
		pkt.Hop = 0
		d.forward(pkt)
		return
	}
	d.bufferAndDiscover(pkt)
}

func (d *DSR) bufferAndDiscover(pkt *dataPacket) {
	dst := pkt.Dst
	disc, ok := d.pending[dst]
	if !ok {
		disc = &discovery{}
		d.pending[dst] = disc
		d.sendRREQ(dst, pkt.Rate)
		d.armRetry(dst, disc)
	}
	if len(disc.buffer) >= sendBufferCap {
		disc.buffer = disc.buffer[1:]
		d.stats.DataDropped++
	}
	disc.buffer = append(disc.buffer, pkt)
}

func (d *DSR) sendRREQ(dst int, rate float64) {
	d.reqID++
	d.stats.RREQSent++
	req := &rreq{
		Origin: d.env.ID, Target: dst, ID: d.reqID,
		Path: []int{d.env.ID}, Rate: rate, TTL: rreqTTL,
	}
	d.env.MAC.SendBroadcast(&mac.Packet{
		Kind: mac.PacketControl, Bytes: req.bytes(), Payload: req,
	}, nil)
}

func (d *DSR) armRetry(dst int, disc *discovery) {
	timeout := discoveryTimeout << uint(disc.tries)
	disc.timer = schedule(d.env.Sim, timeout, func() {
		cur, ok := d.pending[dst]
		if !ok || cur != disc {
			return
		}
		disc.tries++
		if disc.tries >= discoveryRetries {
			d.stats.DataDropped += uint64(len(disc.buffer))
			delete(d.pending, dst)
			return
		}
		var rate float64
		if len(disc.buffer) > 0 {
			rate = disc.buffer[0].Rate
		}
		d.sendRREQ(dst, rate)
		d.armRetry(dst, disc)
	})
}

// HandlePacket dispatches packets handed up by the MAC.
func (d *DSR) HandlePacket(from int, pkt *mac.Packet) {
	switch msg := pkt.Payload.(type) {
	case *rreq:
		d.handleRREQ(from, msg)
	case *rrep:
		d.handleRREP(msg)
	case *rerr:
		d.handleRERR(msg)
	case *dataPacket:
		d.forward(msg)
	}
}

// linkCost evaluates the variant cost of the link from->me.
func (d *DSR) linkCost(from int, req *rreq) float64 {
	if d.v.LinkCost == nil {
		return 1
	}
	return d.v.LinkCost(d, from, req)
}

func (d *DSR) handleRREQ(from int, req *rreq) {
	if req.Origin == d.env.ID {
		return
	}
	key := reqKey{req.Origin, req.ID}
	cost := req.Cost + d.linkCost(from, req)

	if req.Target == d.env.ID {
		best, seenIt := d.answered[key]
		if seenIt && (!d.v.CostBased || cost >= best) {
			return
		}
		d.answered[key] = cost
		route := append(append([]int{}, req.Path...), d.env.ID)
		d.sendRREP(&rrep{
			Origin: req.Origin, Target: req.Target, ID: req.ID,
			Route: route, Cost: cost, Hop: len(route) - 1,
		})
		return
	}

	if indexOf(req.Path, d.env.ID) >= 0 {
		return
	}
	best, seenIt := d.seen[key]
	if seenIt && (!d.v.CostBased || cost >= best) {
		return
	}
	firstCopy := !seenIt
	d.seen[key] = cost

	if req.TTL <= 1 {
		return
	}
	if firstCopy && d.v.Participate != nil && !d.v.Participate(d) {
		// Declined: poison the dedup entry so later copies are ignored too.
		d.seen[key] = math.Inf(-1)
		return
	}

	fwd := &rreq{
		Origin: req.Origin, Target: req.Target, ID: req.ID,
		Path: append(append([]int{}, req.Path...), d.env.ID),
		Cost: cost, Rate: req.Rate, TTL: req.TTL - 1,
	}
	delay := jitter(d.env.RNG(), rreqJitterMax)
	if d.v.ForwardDelay != nil {
		delay += d.v.ForwardDelay(d)
	}
	schedule(d.env.Sim, delay, func() {
		// Suppress if a strictly better copy has been forwarded meanwhile.
		if cur := d.seen[key]; cur < cost {
			return
		}
		d.env.MAC.SendBroadcast(&mac.Packet{
			Kind: mac.PacketControl, Bytes: fwd.bytes(), Payload: fwd,
		}, nil)
	})
}

func (d *DSR) sendRREP(rep *rrep) {
	d.stats.RREPSent++
	d.env.PM.OnActivity(power.ActivityRoute)
	if rep.Hop == 0 {
		return // degenerate single-node route
	}
	next := rep.Route[rep.Hop-1]
	fwd := *rep
	fwd.Hop--
	d.env.MAC.SendUnicast(next, &mac.Packet{
		Kind: mac.PacketControl, Bytes: rep.bytes(), Payload: &fwd,
	}, 0, nil)
}

func (d *DSR) handleRREP(rep *rrep) {
	if rep.Route[rep.Hop] != d.env.ID {
		return // stale forwarding state
	}
	d.env.PM.OnActivity(power.ActivityRoute)
	if rep.Hop == 0 {
		// We are the origin: install the route.
		if d.env.ID != rep.Origin {
			return
		}
		cur, ok := d.cache[rep.Target]
		if ok && d.v.CostBased && cur.cost <= rep.Cost {
			return
		}
		d.cache[rep.Target] = &cachedRoute{path: rep.Route, cost: rep.Cost}
		if disc, ok := d.pending[rep.Target]; ok {
			disc.timer.Cancel()
			delete(d.pending, rep.Target)
			for _, pkt := range disc.buffer {
				pkt.Route = rep.Route
				pkt.Hop = 0
				d.forward(pkt)
			}
		}
		return
	}
	d.sendRREP(rep)
}

// forward moves a data packet one hop along its source route, or delivers it.
func (d *DSR) forward(pkt *dataPacket) {
	if pkt.Dst == d.env.ID {
		d.deliver(pkt)
		return
	}
	i := pkt.Hop
	if i >= len(pkt.Route) || pkt.Route[i] != d.env.ID {
		i = indexOf(pkt.Route, d.env.ID)
		if i < 0 {
			d.stats.DataDropped++
			return
		}
	}
	if i+1 >= len(pkt.Route) {
		d.stats.DataDropped++
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		d.stats.DataDropped++
		return
	}
	if pkt.Src != d.env.ID {
		d.stats.DataForwarded++
		d.env.PM.OnActivity(power.ActivityData)
	}
	next := pkt.Route[i+1]
	fwd := *pkt
	fwd.Hop = i + 1
	var txPower float64
	if d.v.PowerControl {
		txPower = d.env.MAC.TxPowerFor(next)
	}
	d.env.MAC.SendUnicast(next, &mac.Packet{
		Kind: mac.PacketData, Bytes: fwd.bytes(), Payload: &fwd,
	}, txPower, func(ok bool) {
		if !ok {
			d.linkBroken(d.env.ID, next, pkt)
		}
	})
}

func (d *DSR) deliver(pkt *dataPacket) {
	d.stats.DataDelivered++
	d.env.PM.OnActivity(power.ActivityData)
	if d.env.Deliver != nil {
		d.env.Deliver(pkt.Src, pkt.Payload, pkt.AppBytes)
	}
}

// linkBroken reacts to a MAC-layer delivery failure: purge routes through
// the link and notify the packet source.
func (d *DSR) linkBroken(u, v int, pkt *dataPacket) {
	d.stats.DataDropped++
	d.purgeLink(u, v)
	if pkt.Src == d.env.ID {
		return
	}
	i := indexOf(pkt.Route, d.env.ID)
	if i <= 0 {
		return
	}
	d.stats.RERRSent++
	e := &rerr{From: u, To: v, Dst: pkt.Src, Route: pkt.Route, Hop: i}
	d.forwardRERR(e)
}

func (d *DSR) forwardRERR(e *rerr) {
	prev := e.Route[e.Hop-1]
	fwd := *e
	fwd.Hop--
	d.env.MAC.SendUnicast(prev, &mac.Packet{
		Kind: mac.PacketControl, Bytes: rerrBytes, Payload: &fwd,
	}, 0, nil)
}

func (d *DSR) handleRERR(e *rerr) {
	d.purgeLink(e.From, e.To)
	if e.Dst == d.env.ID || e.Hop <= 0 || e.Route[e.Hop] != d.env.ID {
		return
	}
	d.forwardRERR(e)
}

// purgeLink removes cached routes that use the link u-v in either direction.
func (d *DSR) purgeLink(u, v int) {
	for dst, r := range d.cache {
		if hasLink(r.path, u, v) {
			delete(d.cache, dst)
		}
	}
}

// CachedRoute returns the cached path to dst, or nil (exposed for tests and
// relay-count metrics).
func (d *DSR) CachedRoute(dst int) []int {
	if r, ok := d.cache[dst]; ok {
		return append([]int{}, r.path...)
	}
	return nil
}
