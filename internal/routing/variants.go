package routing

import (
	"time"

	"eend/internal/mac"
)

// NewDSR returns plain reactive shortest-path DSR. With powerControl the
// stack is the paper's DSR-ODPM-PC (power management first, then TPC).
func NewDSR(env *Env, powerControl bool) *DSR {
	return NewDSRVariant(env, Variant{
		BaseName:     "DSR",
		PowerControl: powerControl,
	})
}

// NewMTPR returns MTPR (Eq. 10): route cost f(u,v) = Pt(u,v), the
// transmit power level of the link, minimizing total radiated power.
func NewMTPR(env *Env) *DSR {
	return NewDSRVariant(env, Variant{
		BaseName:  "MTPR",
		CostBased: true,
		LinkCost: func(d *DSR, from int, _ *rreq) float64 {
			card := d.env.MAC.Card()
			return d.env.MAC.LinkTxPower(from) - card.Base
		},
		PowerControl: true, // MTPR exists to exploit TPC
	})
}

// NewMTPRPlus returns MTPR+ (Eq. 11): f(u,v) = Pbase + Pt(u,v) + Prx,
// charging the fixed transmitter and receiver costs per hop.
func NewMTPRPlus(env *Env) *DSR {
	return NewDSRVariant(env, Variant{
		BaseName:  "MTPR+",
		CostBased: true,
		LinkCost: func(d *DSR, from int, _ *rreq) float64 {
			card := d.env.MAC.Card()
			return d.env.MAC.LinkTxPower(from) + card.Recv
		},
		PowerControl: true,
	})
}

// hCost implements the joint-optimization link cost h(u,v,r) of Eq. 12:
// c(u,v) = (Ptx(u,v) + Prx - 2*Pidle) * r/B, plus Pidle when the node being
// recruited is power saving (it would have to stay awake to relay).
func hCost(d *DSR, from int, rb float64) float64 {
	card := d.env.MAC.Card()
	c := (d.env.MAC.LinkTxPower(from) + card.Recv - 2*card.Idle) * rb
	if c < 0 {
		c = 0
	}
	if d.env.MAC.PowerMode() == mac.PSM {
		c += card.Idle
	}
	return c
}

// NewDSRH returns the reactive joint-optimization protocol (Section 4.2).
// With withRate the flow rate r from the packet header sets r/B; otherwise
// r/B = 1 (the paper's "norate" variant).
func NewDSRH(env *Env, withRate bool, powerControl bool) *DSR {
	name := "DSRH(norate)"
	if withRate {
		name = "DSRH(rate)"
	}
	return NewDSRVariant(env, Variant{
		BaseName:  name,
		CostBased: true,
		LinkCost: func(d *DSR, from int, req *rreq) float64 {
			rb := 1.0
			if withRate && req.Rate > 0 && d.env.Bandwidth > 0 {
				rb = req.Rate / d.env.Bandwidth
			}
			return hCost(d, from, rb)
		},
		PowerControl: powerControl,
	})
}

// titanDeferral is the extra RREQ forwarding delay of power-saving nodes, so
// that backbone (AM) paths win the route-discovery race.
const titanDeferral = 5 * time.Millisecond

// TITANOptions disable individual TITAN mechanisms for ablation studies.
type TITANOptions struct {
	// DisableProbability makes every power-saving node forward RREQs
	// (removes the backbone participation bias).
	DisableProbability bool
	// DisableDeferral removes the extra RREQ forwarding delay of
	// power-saving nodes (backbone routes no longer win the race).
	DisableDeferral bool
}

// NewTITAN returns TITAN (Section 4.3, [21]): DSR-style discovery in which a
// power-saving node joins route discovery only probabilistically, with the
// probability shrinking as more backbone (AM) nodes cover its neighborhood,
// and with a forwarding deferral so established backbone routes are found
// first. Active nodes always participate, which focuses traffic on the
// existing backbone and lets everyone else keep sleeping.
func NewTITAN(env *Env, powerControl bool) *DSR {
	return NewTITANVariant(env, powerControl, TITANOptions{})
}

// NewTITANVariant returns TITAN with individual mechanisms ablated.
func NewTITANVariant(env *Env, powerControl bool, opts TITANOptions) *DSR {
	v := Variant{
		BaseName:     "TITAN",
		PowerControl: powerControl,
	}
	if !opts.DisableProbability {
		v.Participate = func(d *DSR) bool {
			if d.env.MAC.PowerMode() == mac.AM {
				return true
			}
			neighbors := d.env.MAC.NeighborsCached()
			backbone := 0
			for _, id := range neighbors {
				if d.env.MAC.PeerPowerMode(id) == mac.AM {
					backbone++
				}
			}
			if backbone == 0 {
				return true // no backbone nearby: must help or partition
			}
			p := 1.0 / float64(1+backbone)
			if len(neighbors) > 8 {
				// Dense neighborhoods offer route diversity; defer harder.
				p *= 8.0 / float64(len(neighbors))
			}
			if p < 0.05 {
				p = 0.05
			}
			return d.env.RNG().Float64() < p
		}
	}
	if !opts.DisableDeferral {
		v.ForwardDelay = func(d *DSR) time.Duration {
			if d.env.MAC.PowerMode() == mac.PSM {
				return titanDeferral + jitter(d.env.RNG(), titanDeferral)
			}
			return 0
		}
	}
	return NewDSRVariant(env, v)
}
