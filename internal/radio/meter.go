package radio

import (
	"fmt"
	"time"
)

// Mode is the persistent radio mode between frames.
type Mode int

// Persistent modes. A node in power-save sleeps between ATIM windows; an
// active-mode node idles.
const (
	ModeIdle Mode = iota + 1
	ModeSleep
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeIdle:
		return "idle"
	case ModeSleep:
		return "sleep"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// TxKind classifies a transmission for the paper's Ecomm split into data
// energy (Eq. 1) and control energy (Eq. 2).
type TxKind int

// Transmission kinds.
const (
	TxData TxKind = iota + 1
	TxControl
)

// Breakdown is the integrated energy in joules per radio activity,
// mirroring the paper's Eqs. 1-4.
type Breakdown struct {
	TxData    float64 `json:"tx_data_j"`    // J, transmitting data frames
	TxControl float64 `json:"tx_control_j"` // J, transmitting control frames (routing + MAC mgmt)
	Rx        float64 `json:"rx_j"`         // J, receiving or overhearing frames
	Idle      float64 `json:"idle_j"`       // J, idle listening
	Sleep     float64 `json:"sleep_j"`      // J, asleep
	Switch    float64 `json:"switch_j"`     // J, sleep<->awake transitions (Esw)

	// TxAmp is the amplifier (radiated) portion of all transmissions:
	// (Ptx - Pbase) integrated over airtime. It is a sub-component of
	// TxData+TxControl, not additive with them; it is what transmission
	// power control actually reduces (the paper's Fig. 10 metric).
	TxAmp float64 `json:"tx_amp_j"`
}

// Comm returns communication energy Ecomm = Edata + Econtrol + Rx (Eq. 1-2).
func (b Breakdown) Comm() float64 { return b.TxData + b.TxControl + b.Rx }

// Passive returns idling energy Epassive (Eq. 3).
func (b Breakdown) Passive() float64 { return b.Idle + b.Sleep + b.Switch }

// Total returns the node's total energy consumption.
func (b Breakdown) Total() float64 { return b.Comm() + b.Passive() }

// Add accumulates o into b.
func (b *Breakdown) Add(o Breakdown) {
	b.TxData += o.TxData
	b.TxControl += o.TxControl
	b.Rx += o.Rx
	b.Idle += o.Idle
	b.Sleep += o.Sleep
	b.Switch += o.Switch
	b.TxAmp += o.TxAmp
}

// Radio is the per-node energy state machine. The MAC drives it with
// StartTx/EndTx, StartRx/EndRx and SetMode; the meter integrates the active
// power over virtual time. Priority: transmitting > receiving > mode.
//
// Radio is not safe for concurrent use; the simulation kernel is
// single-threaded by design.
type Radio struct {
	card Card

	mode    Mode
	txPower float64
	txKind  TxKind
	txBusy  bool
	rxCount int

	last time.Duration
	acc  Breakdown
}

// NewRadio returns a radio in idle mode at virtual time zero.
func NewRadio(card Card) *Radio {
	return &Radio{card: card, mode: ModeIdle}
}

// Card returns the radio's card parameters.
func (r *Radio) Card() Card { return r.card }

// Mode returns the persistent mode (idle or sleep).
func (r *Radio) Mode() Mode { return r.mode }

// Asleep reports whether the radio is currently in sleep mode and not
// engaged in a frame exchange.
func (r *Radio) Asleep() bool { return r.mode == ModeSleep && !r.txBusy && r.rxCount == 0 }

// Transmitting reports whether a transmission is in progress.
func (r *Radio) Transmitting() bool { return r.txBusy }

// Receiving reports whether at least one reception is in progress.
func (r *Radio) Receiving() bool { return r.rxCount > 0 }

// advance accrues energy for the interval [r.last, now] into the bucket for
// the current activity.
func (r *Radio) advance(now time.Duration) {
	dt := (now - r.last).Seconds()
	if dt < 0 {
		panic(fmt.Sprintf("radio: time went backwards: %v -> %v", r.last, now))
	}
	r.last = now
	switch {
	case r.txBusy:
		e := r.txPower * dt
		if r.txKind == TxControl {
			r.acc.TxControl += e
		} else {
			r.acc.TxData += e
		}
		if amp := r.txPower - r.card.Base; amp > 0 {
			r.acc.TxAmp += amp * dt
		}
	case r.rxCount > 0:
		r.acc.Rx += r.card.Recv * dt
	case r.mode == ModeSleep:
		r.acc.Sleep += r.card.Sleep * dt
	default:
		r.acc.Idle += r.card.Idle * dt
	}
}

// SetMode switches the persistent mode, charging Esw on sleep transitions.
func (r *Radio) SetMode(now time.Duration, m Mode) {
	if m != ModeIdle && m != ModeSleep {
		panic(fmt.Sprintf("radio: invalid mode %d", int(m)))
	}
	if m == r.mode {
		return
	}
	r.advance(now)
	r.mode = m
	r.acc.Switch += r.card.SwitchEnergy
}

// StartTx begins a transmission billed at power (W). The radio must be awake
// and not already transmitting: the MAC serializes its own transmissions.
func (r *Radio) StartTx(now time.Duration, power float64, kind TxKind) {
	if r.txBusy {
		panic("radio: StartTx while already transmitting")
	}
	if r.mode == ModeSleep {
		panic("radio: StartTx while asleep")
	}
	r.advance(now)
	r.txBusy = true
	r.txPower = power
	r.txKind = kind
}

// EndTx finishes the in-progress transmission.
func (r *Radio) EndTx(now time.Duration) {
	if !r.txBusy {
		panic("radio: EndTx without StartTx")
	}
	r.advance(now)
	r.txBusy = false
	r.txPower = 0
}

// StartRx begins a reception (or overhearing). Receptions nest: a node in
// range of two overlapping transmissions is in receive state for their union.
func (r *Radio) StartRx(now time.Duration) {
	r.advance(now)
	r.rxCount++
}

// EndRx finishes one nested reception.
func (r *Radio) EndRx(now time.Duration) {
	if r.rxCount <= 0 {
		panic("radio: EndRx without StartRx")
	}
	r.advance(now)
	r.rxCount--
}

// Snapshot returns the energy breakdown integrated up to now.
func (r *Radio) Snapshot(now time.Duration) Breakdown {
	r.advance(now)
	return r.acc
}
