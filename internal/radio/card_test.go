package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTxPowerTable1(t *testing.T) {
	// Spot-check the transcribed Table 1 laws at the card's nominal range
	// (values in W, computed from the paper's mW formulas).
	cases := []struct {
		card Card
		d    float64
		want float64
	}{
		{Aironet350, 140, 2.165 + 3.6e-10*math.Pow(140, 4)},
		{Cabletron, 250, 1.118 + 7.2e-11*math.Pow(250, 4)},
		{HypotheticalCabletron, 250, 1.118 + 5.2e-9*math.Pow(250, 4)},
		{Mica2, 68, 0.0102 + 9.4e-10*math.Pow(68, 4)},
		{LEACH4, 100, 0.050 + 1.3e-9*math.Pow(100, 4)},
		{LEACH2, 75, 0.050 + 1e-5*75*75},
	}
	for _, c := range cases {
		if got := c.card.TxPower(c.d); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: TxPower(%v) = %v, want %v", c.card.Name, c.d, got, c.want)
		}
	}
}

func TestHypotheticalCabletronNeeds20W(t *testing.T) {
	// Section 5.1: "the transmit power to reach D = 250 m increases up to
	// 20 W" for the hypothetical card.
	p := HypotheticalCabletron.MaxTxPower()
	if p < 20 || p > 22 {
		t.Fatalf("Hypothetical Cabletron max TX power = %.2f W, want ~20-22 W", p)
	}
}

func TestTxPowerClampedAtRange(t *testing.T) {
	for _, c := range Cards() {
		if got, want := c.TxPower(c.Range*2), c.MaxTxPower(); got != want {
			t.Errorf("%s: TxPower beyond range = %v, want clamp to %v", c.Name, got, want)
		}
		if got := c.TxPower(-5); got != c.TxPower(0) {
			t.Errorf("%s: negative distance not clamped", c.Name)
		}
	}
}

func TestRangeAtInvertsTxPower(t *testing.T) {
	for _, c := range Cards() {
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.9, 1.0} {
			d := c.Range * frac
			got := c.RangeAt(c.TxPower(d))
			if math.Abs(got-d) > 1e-6*c.Range {
				t.Errorf("%s: RangeAt(TxPower(%v)) = %v", c.Name, d, got)
			}
		}
	}
}

func TestRangeAtEdgeCases(t *testing.T) {
	c := Cabletron
	if got := c.RangeAt(0); got != 0 {
		t.Errorf("RangeAt(0) = %v, want 0", got)
	}
	if got := c.RangeAt(c.Base); got != 0 {
		t.Errorf("RangeAt(Base) = %v, want 0", got)
	}
	if got := c.RangeAt(1e6); got != c.Range {
		t.Errorf("RangeAt(huge) = %v, want Range", got)
	}
}

func TestTxPowerMonotonic(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Abs(math.Mod(a, 250))
		b = math.Abs(math.Mod(b, 250))
		if a > b {
			a, b = b, a
		}
		return Cabletron.TxPower(a) <= Cabletron.TxPower(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCardsValidate(t *testing.T) {
	for _, c := range Cards() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadCards(t *testing.T) {
	bad := []Card{
		{Name: "neg", Idle: -1, Range: 10, PathLossExp: 2},
		{Name: "exp", Idle: 1, Recv: 1, PathLossExp: 5, Range: 10},
		{Name: "range", Idle: 1, Recv: 1, PathLossExp: 2, Range: 0},
		{Name: "sleep", Idle: 1, Recv: 1, Sleep: 2, PathLossExp: 2, Range: 10},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
}

func TestPerfectSleep(t *testing.T) {
	ps := Cabletron.PerfectSleep()
	if ps.Idle != Cabletron.Sleep {
		t.Errorf("PerfectSleep idle = %v, want sleep power %v", ps.Idle, Cabletron.Sleep)
	}
	if ps.Recv != Cabletron.Recv || ps.Base != Cabletron.Base {
		t.Error("PerfectSleep must not change communication powers")
	}
	if Cabletron.Idle == Cabletron.Sleep {
		t.Error("test card must have distinct idle/sleep for this test")
	}
}

func TestIdlePowerComparableToRecv(t *testing.T) {
	// Paper Section 2.1: "idle power is as large as receive power".
	for _, c := range []Card{Aironet350, Cabletron, Mica2} {
		if c.Idle > c.Recv {
			t.Errorf("%s: idle %v > recv %v", c.Name, c.Idle, c.Recv)
		}
		if c.Idle < 0.5*c.Recv {
			t.Errorf("%s: idle %v implausibly small vs recv %v", c.Name, c.Idle, c.Recv)
		}
	}
}
