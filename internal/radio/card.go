// Package radio implements the paper's wireless-card energy model
// (Section 2.1): four operating modes (transmit, receive, idle, sleep) with
// per-mode powers, polynomial path-loss transmit power
// Ptx(d) = Pbase + alpha2*d^n, and a per-node energy meter that integrates
// power over virtual time, split into the buckets the paper reports
// (data/control transmit, receive, idle, sleep, switching).
//
// All quantities are SI: watts, joules, meters, seconds.
package radio

import (
	"fmt"
	"math"
)

// Card holds the radio parameters of a wireless card (paper Table 1,
// converted from mW to W).
type Card struct {
	Name string

	Idle  float64 // W, power in idle (listening) state: Pidle
	Recv  float64 // W, power while receiving: Prx
	Sleep float64 // W, power while asleep: Psleep

	Base        float64 // W, base transmitter cost: Pbase
	Alpha       float64 // W/m^n, amplifier coefficient: alpha2
	PathLossExp float64 // n, path-loss exponent (2..4)
	Range       float64 // m, nominal maximum transmission range D

	SwitchEnergy float64 // J, cost of one sleep<->awake transition: Esw
}

// TxPower returns the total transmit power draw Ptx(d) = Pbase + alpha2*d^n
// needed to reach distance d, clamped to the card's maximum (the power needed
// to reach Range). Distances beyond Range are unreachable; TxPower still
// reports the max power so callers can detect the clamp via RangeAt.
func (c Card) TxPower(d float64) float64 {
	if d < 0 {
		d = 0
	}
	if d > c.Range {
		d = c.Range
	}
	return c.Base + c.Alpha*math.Pow(d, c.PathLossExp)
}

// MaxTxPower returns the transmit power draw at the card's maximum range.
func (c Card) MaxTxPower() float64 { return c.TxPower(c.Range) }

// RangeAt inverts the path-loss law: the distance reachable with total
// transmit power p, clamped to [0, Range].
func (c Card) RangeAt(p float64) float64 {
	if p <= c.Base {
		return 0
	}
	d := math.Pow((p-c.Base)/c.Alpha, 1/c.PathLossExp)
	return math.Min(d, c.Range)
}

// PerfectSleep returns a copy of the card whose idle power is priced at
// sleep power. This is the paper's "perfect sleep scheduling" oracle
// (Section 5.2.3): nodes wake at exactly the instants they are needed, so
// passive time costs sleep power, with no behavioural change to the stack.
func (c Card) PerfectSleep() Card {
	c.Name += "/perfect-sleep"
	c.Idle = c.Sleep
	return c
}

// Validate reports whether the card parameters are physically sensible.
func (c Card) Validate() error {
	switch {
	case c.Idle < 0 || c.Recv < 0 || c.Sleep < 0 || c.Base < 0 || c.Alpha < 0:
		return fmt.Errorf("radio: card %q has negative power parameter", c.Name)
	case c.PathLossExp < 2 || c.PathLossExp > 4:
		return fmt.Errorf("radio: card %q path-loss exponent %.1f outside [2,4]", c.Name, c.PathLossExp)
	case c.Range <= 0:
		return fmt.Errorf("radio: card %q has non-positive range", c.Name)
	case c.Sleep > c.Idle:
		return fmt.Errorf("radio: card %q sleep power exceeds idle power", c.Name)
	}
	return nil
}

// The cards of paper Table 1. Sleep powers and switching energies are not in
// Table 1; the paper treats sleep power as "typically negligible", so small
// measured-order values are used (WLAN cards tens of mW, motes tens of uW).
var (
	// Aironet350 is the Cisco Aironet 350 model (Table 1, fitted d^4 law).
	Aironet350 = Card{
		Name: "Aironet 350", Idle: 1.350, Recv: 1.350, Sleep: 0.075,
		Base: 2.165, Alpha: 3.6e-10, PathLossExp: 4, Range: 140,
		SwitchEnergy: 1e-3,
	}

	// Cabletron is the Cabletron RoamAbout model (Table 1).
	Cabletron = Card{
		Name: "Cabletron", Idle: 0.830, Recv: 1.000, Sleep: 0.050,
		Base: 1.118, Alpha: 7.2e-11, PathLossExp: 4, Range: 250,
		SwitchEnergy: 1e-3,
	}

	// HypotheticalCabletron raises the amplifier coefficient to
	// alpha2 = 5.2e-6 mW/m^4 so that m_opt >= 2 at R/B = 0.25
	// (Section 5.1): the one card for which relaying can pay off.
	HypotheticalCabletron = Card{
		Name: "Hypothetical Cabletron", Idle: 0.830, Recv: 1.000, Sleep: 0.050,
		Base: 1.118, Alpha: 5.2e-9, PathLossExp: 4, Range: 250,
		SwitchEnergy: 1e-3,
	}

	// Mica2 is the Crossbow Mica2 mote model (Table 1).
	Mica2 = Card{
		Name: "Mica2", Idle: 0.021, Recv: 0.021, Sleep: 3e-5,
		Base: 0.0102, Alpha: 9.4e-10, PathLossExp: 4, Range: 68,
		SwitchEnergy: 1e-6,
	}

	// LEACH4 is the LEACH radio with the d^4 law (Table 1, n=4, D=100 m).
	LEACH4 = Card{
		Name: "LEACH (n=4)", Idle: 0.050, Recv: 0.050, Sleep: 1e-5,
		Base: 0.050, Alpha: 1.3e-9, PathLossExp: 4, Range: 100,
		SwitchEnergy: 1e-6,
	}

	// LEACH2 is the LEACH radio with the d^2 law (Table 1, n=2, D=75 m).
	LEACH2 = Card{
		Name: "LEACH (n=2)", Idle: 0.050, Recv: 0.050, Sleep: 1e-5,
		Base: 0.050, Alpha: 1e-5, PathLossExp: 2, Range: 75,
		SwitchEnergy: 1e-6,
	}
)

// Cards lists every card of Table 1 in presentation order.
func Cards() []Card {
	return []Card{Aironet350, Cabletron, HypotheticalCabletron, Mica2, LEACH4, LEACH2}
}
