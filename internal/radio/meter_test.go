package radio

import (
	"math"
	"testing"
	"time"
)

// testCard has round powers to make hand-computed energies easy.
var testCard = Card{
	Name: "test", Idle: 1.0, Recv: 2.0, Sleep: 0.1,
	Base: 0.5, Alpha: 1e-8, PathLossExp: 4, Range: 100,
	SwitchEnergy: 0.25,
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestIdleAccrual(t *testing.T) {
	r := NewRadio(testCard)
	b := r.Snapshot(10 * time.Second)
	approx(t, "Idle", b.Idle, 10.0)
	approx(t, "Total", b.Total(), 10.0)
}

func TestSleepAccrual(t *testing.T) {
	r := NewRadio(testCard)
	r.SetMode(2*time.Second, ModeSleep)
	b := r.Snapshot(12 * time.Second)
	approx(t, "Idle", b.Idle, 2.0)
	approx(t, "Sleep", b.Sleep, 1.0)    // 10 s at 0.1 W
	approx(t, "Switch", b.Switch, 0.25) // one transition
}

func TestSwitchBothWays(t *testing.T) {
	r := NewRadio(testCard)
	r.SetMode(time.Second, ModeSleep)
	r.SetMode(2*time.Second, ModeIdle)
	b := r.Snapshot(3 * time.Second)
	approx(t, "Switch", b.Switch, 0.5)
	approx(t, "Idle", b.Idle, 2.0)
	approx(t, "Sleep", b.Sleep, 0.1)
}

func TestSetModeNoopSameMode(t *testing.T) {
	r := NewRadio(testCard)
	r.SetMode(time.Second, ModeIdle)
	b := r.Snapshot(2 * time.Second)
	approx(t, "Switch", b.Switch, 0)
}

func TestTxAccounting(t *testing.T) {
	r := NewRadio(testCard)
	r.StartTx(1*time.Second, 3.0, TxData)
	r.EndTx(2 * time.Second)
	r.StartTx(3*time.Second, 5.0, TxControl)
	r.EndTx(3500 * time.Millisecond)
	b := r.Snapshot(4 * time.Second)
	approx(t, "TxData", b.TxData, 3.0)
	approx(t, "TxControl", b.TxControl, 2.5)
	approx(t, "Idle", b.Idle, 2.5) // 0-1, 2-3, 3.5-4
	approx(t, "Comm", b.Comm(), 5.5)
}

func TestRxAccounting(t *testing.T) {
	r := NewRadio(testCard)
	r.StartRx(1 * time.Second)
	r.EndRx(3 * time.Second)
	b := r.Snapshot(4 * time.Second)
	approx(t, "Rx", b.Rx, 4.0) // 2 s at 2 W
	approx(t, "Idle", b.Idle, 2.0)
}

func TestNestedRx(t *testing.T) {
	// Two overlapping receptions bill receive power once over the union.
	r := NewRadio(testCard)
	r.StartRx(1 * time.Second)
	r.StartRx(2 * time.Second)
	r.EndRx(3 * time.Second)
	r.EndRx(4 * time.Second)
	b := r.Snapshot(5 * time.Second)
	approx(t, "Rx", b.Rx, 6.0) // union [1,4] at 2 W
	approx(t, "Idle", b.Idle, 2.0)
}

func TestTxPriorityOverRx(t *testing.T) {
	// While transmitting, power is billed to TX even if a reception overlaps
	// (the MAC never does this for real frames, but overhearing bookkeeping
	// may interleave).
	r := NewRadio(testCard)
	r.StartRx(0)
	r.StartTx(1*time.Second, 4.0, TxData)
	r.EndTx(2 * time.Second)
	r.EndRx(3 * time.Second)
	b := r.Snapshot(3 * time.Second)
	approx(t, "TxData", b.TxData, 4.0)
	approx(t, "Rx", b.Rx, 4.0) // [0,1] and [2,3]
}

func TestSleepRxTransitions(t *testing.T) {
	r := NewRadio(testCard)
	r.SetMode(0, ModeSleep)
	// Mode stays sleep but an explicit wake for a frame is modelled by the
	// MAC setting idle mode first; verify Asleep reporting.
	if !r.Asleep() {
		t.Fatal("radio should be asleep")
	}
	r.SetMode(time.Second, ModeIdle)
	if r.Asleep() {
		t.Fatal("radio should be awake")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("EndTx w/o StartTx", func() { NewRadio(testCard).EndTx(0) })
	mustPanic("EndRx w/o StartRx", func() { NewRadio(testCard).EndRx(0) })
	mustPanic("double StartTx", func() {
		r := NewRadio(testCard)
		r.StartTx(0, 1, TxData)
		r.StartTx(0, 1, TxData)
	})
	mustPanic("StartTx asleep", func() {
		r := NewRadio(testCard)
		r.SetMode(0, ModeSleep)
		r.StartTx(0, 1, TxData)
	})
	mustPanic("time backwards", func() {
		r := NewRadio(testCard)
		r.Snapshot(time.Second)
		r.Snapshot(0)
	})
	mustPanic("bad mode", func() { NewRadio(testCard).SetMode(0, Mode(9)) })
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{TxData: 1, TxControl: 2, Rx: 3, Idle: 4, Sleep: 5, Switch: 6}
	b := Breakdown{TxData: 10, TxControl: 20, Rx: 30, Idle: 40, Sleep: 50, Switch: 60}
	a.Add(b)
	approx(t, "TxData", a.TxData, 11)
	approx(t, "Passive", a.Passive(), 44+55+66)
	approx(t, "Comm", a.Comm(), 11+22+33)
	approx(t, "Total", a.Total(), 11+22+33+44+55+66)
}

func TestModeString(t *testing.T) {
	if ModeIdle.String() != "idle" || ModeSleep.String() != "sleep" {
		t.Error("unexpected Mode strings")
	}
	if Mode(0).String() == "" {
		t.Error("unknown mode should still stringify")
	}
}

func TestEnergyConservation(t *testing.T) {
	// Total energy equals integral of the active power: run a scripted
	// sequence and compare against a hand-computed sum.
	r := NewRadio(testCard)
	r.StartRx(500 * time.Millisecond)
	r.EndRx(1500 * time.Millisecond)
	r.StartTx(2*time.Second, 2.5, TxData)
	r.EndTx(2500 * time.Millisecond)
	r.SetMode(3*time.Second, ModeSleep)
	r.SetMode(5*time.Second, ModeIdle)
	b := r.Snapshot(6 * time.Second)
	want := 1.0*2 + // rx 1 s at 2 W
		2.5*0.5 + // tx
		0.1*2 + // sleep 2 s
		0.25*2 + // two switches
		1.0*(0.5+0.5+0.5+1.0) // idle: [0,.5],[1.5,2],[2.5,3],[5,6]
	approx(t, "Total", b.Total(), want)
}
