package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestDisabledTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.ID() != "" {
		t.Fatal("nil tracer has a trace id")
	}
	sp := tr.Start(Span{}, "root", "k")
	if sp.ID() != "" {
		t.Fatal("span from disabled tracer has an id")
	}
	sp.End()           // must not panic
	sp.Point("p", "k") // must not panic
	child := tr.Start(sp, "child", "k")
	child.End(A("k", "v"))
}

func TestDisabledTracerZeroAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start(Span{}, "run", "fp")
		sp.Point("mark", "0")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per op, want 0", allocs)
	}
}

func TestDeterministicIDs(t *testing.T) {
	sink := NewMemSink()
	tr1 := NewTracer(TraceID("scenario-fp"), sink)
	tr2 := NewTracer(TraceID("scenario-fp"), NewMemSink())

	r1 := tr1.Start(Span{}, "sweep", "grid-fp")
	c1 := tr1.Start(r1, "point", "p0")
	r2 := tr2.Start(Span{}, "sweep", "grid-fp")
	c2 := tr2.Start(r2, "point", "p0")

	if r1.ID() != r2.ID() || c1.ID() != c2.ID() {
		t.Fatalf("same workload produced different span ids: %s/%s vs %s/%s",
			r1.ID(), c1.ID(), r2.ID(), c2.ID())
	}
	if tr1.ID() != tr2.ID() {
		t.Fatal("same seed produced different trace ids")
	}
	other := tr1.Start(r1, "point", "p1")
	if other.ID() == c1.ID() {
		t.Fatal("different keys produced the same span id")
	}
	if TraceID("a") == TraceID("b") {
		t.Fatal("different seeds produced the same trace id")
	}
}

func TestSpanTreeRoundTrip(t *testing.T) {
	sink := NewMemSink()
	tr := NewTracer(TraceID("root"), sink)

	root := tr.Start(Span{}, "sweep", "grid")
	p0 := tr.Start(root, "point", "fp0")
	rep := tr.Start(p0, "replicate", "rfp0")
	rep.End(A("source", "sim"))
	p0.End()
	root.Point("best", "1", AInt("step", 4))
	root.End(AInt("points", 1))

	events := sink.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	byID := make(map[string]Event)
	for _, ev := range events {
		byID[ev.Span] = ev
		if ev.Trace != tr.ID() {
			t.Errorf("event %s has trace %s, want %s", ev.Name, ev.Trace, tr.ID())
		}
	}
	// Walk child → parent up to the root.
	repEv := byID[rep.ID()]
	if repEv.Parent != p0.ID() {
		t.Errorf("replicate parent = %s, want %s", repEv.Parent, p0.ID())
	}
	if byID[repEv.Parent].Parent != root.ID() {
		t.Error("point does not parent to sweep root")
	}
	if byID[root.ID()].Parent != "" {
		t.Error("root has a parent")
	}
	if repEv.Attrs["source"] != "sim" {
		t.Errorf("replicate attrs = %v", repEv.Attrs)
	}
}

func TestJSONLSink(t *testing.T) {
	var b strings.Builder
	tr := NewTracer("t1", NewJSONLSink(&b))
	sp := tr.Start(Span{}, "run", "k")
	sp.End(A("ok", "yes"))

	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	if ev.Name != "run" || ev.Trace != "t1" || ev.Attrs["ok"] != "yes" {
		t.Errorf("round-tripped event = %+v", ev)
	}
}

func TestMemSinkCap(t *testing.T) {
	s := &MemSink{cap: 2}
	for i := 0; i < 5; i++ {
		s.Emit(Event{Name: "e"})
	}
	if len(s.Events()) != 2 || s.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d, want 2/3", len(s.Events()), s.Dropped())
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := context.Background()
	if TracerFrom(ctx) != nil {
		t.Fatal("empty context carries a tracer")
	}
	if SpanFrom(ctx).ID() != "" {
		t.Fatal("empty context carries a span")
	}
	tr := NewTracer("t", NewMemSink())
	ctx = WithTracer(ctx, tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("tracer not recovered from context")
	}
	sp := tr.Start(Span{}, "s", "k")
	ctx = WithSpan(ctx, sp)
	if SpanFrom(ctx).ID() != sp.ID() {
		t.Fatal("span not recovered from context")
	}
	// WithTracer(nil) must not shadow the context with a nil value.
	if TracerFrom(WithTracer(ctx, nil)) != tr {
		t.Fatal("WithTracer(nil) clobbered the tracer")
	}
}

func TestSortEvents(t *testing.T) {
	evs := []Event{
		{Span: "b", StartUS: 10},
		{Span: "a", StartUS: 10},
		{Span: "c", StartUS: 5},
	}
	SortEvents(evs)
	if evs[0].Span != "c" || evs[1].Span != "a" || evs[2].Span != "b" {
		t.Fatalf("sorted order = %v", evs)
	}
}
