// Package obs is the zero-dependency observability core: a typed metric
// registry rendered in the Prometheus text exposition format, and a
// lightweight span tracer emitting JSONL trace events to a pluggable sink.
//
// # Metrics
//
// A Registry holds metric families — counters, gauges and fixed-bucket
// histograms, optionally carrying static labels — and renders them all
// through one shared text encoder (WriteText). Measurement is lock-free
// (atomic adds on the instruments); registration takes the registry lock
// and is meant to happen once, in package variable initializers:
//
//	var simRuns = obs.Default().Counter("eend_sim_runs_total",
//	        "Completed simulator runs.")
//
// The process-wide Default registry collects instrumentation from every
// internal layer (sim, exec, cache, dist, sweep, opt); servers with
// endpoint-scoped metrics build their own Registry and render both.
//
// # Tracing
//
// A Tracer records spans: named, keyed, attributed intervals that form a
// tree through parent links. Span identifiers are deterministic — derived
// by hashing (parent id, name, key), with the trace id itself derived from
// a scenario or grid fingerprint — so two runs of the same workload
// produce structurally identical traces regardless of scheduling, and a
// span's id can be predicted by any layer that knows its key. Only the
// recorded wall-clock timestamps differ between runs.
//
// A nil *Tracer is the disabled tracer: every method is a safe no-op and
// Enabled() reports false, so instrumented call sites cost a nil check
// (and zero allocations) when tracing is off. The determinism contract
// extends to tracing: enabling a tracer never changes simulation results,
// which stay bit-identical to an untraced run.
package obs

import "sync"

// defaultRegistry is the process-wide registry every internal layer
// instruments against.
var defaultRegistry = sync.OnceValue(NewRegistry)

// Default returns the process-wide metric registry.
func Default() *Registry { return defaultRegistry() }
