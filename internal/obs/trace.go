package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key=value annotation on a span or event.
type Attr struct {
	Key   string
	Value string
}

// A attaches a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt attaches an integer attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", v)} }

// Event is one completed span (or zero-duration point) as written to a
// sink. StartUS is microseconds since the Unix epoch; DurUS the span's
// wall-clock duration in microseconds. Attrs keys render sorted so the
// JSON form of an event is deterministic given deterministic attributes.
type Event struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Sink receives completed trace events. Emit may be called concurrently.
type Sink interface {
	Emit(Event)
}

// JSONLSink writes one JSON object per line to w.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink wraps w as a sink.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(ev Event) {
	b, err := json.Marshal(ev)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	s.w.Write(b)
	s.mu.Unlock()
}

// MemSink buffers events in memory, capped at a fixed size so a
// long-running job cannot grow without bound. The zero value is ready to
// use and holds up to DefaultMemSinkCap events.
type MemSink struct {
	mu      sync.Mutex
	events  []Event
	dropped int
	cap     int
}

// DefaultMemSinkCap bounds a MemSink built with NewMemSink.
const DefaultMemSinkCap = 100000

// NewMemSink returns a sink holding up to DefaultMemSinkCap events.
func NewMemSink() *MemSink { return &MemSink{cap: DefaultMemSinkCap} }

// Emit appends the event, dropping it if the sink is full.
func (s *MemSink) Emit(ev Event) {
	s.mu.Lock()
	if s.cap == 0 {
		s.cap = DefaultMemSinkCap
	}
	if len(s.events) < s.cap {
		s.events = append(s.events, ev)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
}

// Events returns a copy of the buffered events.
func (s *MemSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Dropped reports how many events were discarded after the cap was hit.
func (s *MemSink) Dropped() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// WriteJSONL writes the buffered events as JSONL to w.
func (s *MemSink) WriteJSONL(w io.Writer) error {
	for _, ev := range s.Events() {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Tracer records spans into a sink under one trace id. A nil *Tracer is
// the disabled tracer: Enabled reports false, Start returns a zero Span
// whose End is a no-op, and no call allocates.
type Tracer struct {
	trace string
	sink  Sink
}

// NewTracer builds a tracer writing to sink under the given trace id
// (normally TraceID of a workload fingerprint).
func NewTracer(trace string, sink Sink) *Tracer {
	return &Tracer{trace: trace, sink: sink}
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.sink != nil }

// ID returns the trace id ("" for the disabled tracer).
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return t.trace
}

// Span is one in-progress interval. The zero Span (from a disabled
// tracer) is inert: End and Point on it do nothing, and its ID is "".
type Span struct {
	t      *Tracer
	id     string
	parent string
	name   string
	start  time.Time
}

// TraceID derives a trace identifier from a workload seed, normally a
// scenario or grid fingerprint. The same workload always yields the same
// trace id.
func TraceID(seed string) string {
	return hashID("trace", "", seed)
}

// hashID derives a 64-bit hex identifier from (name, parent, key) with
// FNV-1a. Deterministic: the same ancestry and key always produce the
// same id, independent of timing or scheduling.
func hashID(name, parent, key string) string {
	h := fnv.New64a()
	io.WriteString(h, parent)
	h.Write([]byte{0})
	io.WriteString(h, name)
	h.Write([]byte{0})
	io.WriteString(h, key)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Start opens a span under parent (use the zero Span for a root). The
// span id is derived from (parent id, name, key), so the same workload
// yields the same span tree run after run. key should be stable — a
// fingerprint, an index — not a timestamp.
func (t *Tracer) Start(parent Span, name, key string) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{
		t:      t,
		id:     hashID(name, parent.id, key),
		parent: parent.id,
		name:   name,
		start:  time.Now(),
	}
}

// ID returns the span's deterministic identifier ("" when disabled).
func (s Span) ID() string { return s.id }

// End completes the span, emitting one event with the given attributes.
func (s Span) End(attrs ...Attr) {
	if s.t == nil {
		return
	}
	now := time.Now()
	s.t.sink.Emit(Event{
		Trace:   s.t.trace,
		Span:    s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   now.Sub(s.start).Microseconds(),
		Attrs:   attrMap(attrs),
	})
}

// Point emits a zero-duration child event under s — a timeline marker
// such as a best-so-far improvement during search.
func (s Span) Point(name, key string, attrs ...Attr) {
	if s.t == nil {
		return
	}
	now := time.Now()
	s.t.sink.Emit(Event{
		Trace:   s.t.trace,
		Span:    hashID(name, s.id, key),
		Parent:  s.id,
		Name:    name,
		StartUS: now.UnixMicro(),
		DurUS:   0,
		Attrs:   attrMap(attrs),
	})
}

// attrMap converts attributes to the map form events carry. Returns nil
// for none so empty attrs marshal as absent.
func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}

// SortEvents orders events deterministically: by start time, then span id.
// Useful before asserting on or displaying a trace.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].StartUS != events[j].StartUS {
			return events[i].StartUS < events[j].StartUS
		}
		return events[i].Span < events[j].Span
	})
}

// tracerKey carries a *Tracer through a context.
type tracerKey struct{}

// spanKey carries the current parent Span through a context.
type spanKey struct{}

// WithTracer returns a context carrying t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the context's tracer, or nil (the disabled tracer).
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// WithSpan returns a context carrying s as the current parent span.
func WithSpan(ctx context.Context, s Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's current span (zero Span if none).
func SpanFrom(ctx context.Context) Span {
	s, _ := ctx.Value(spanKey{}).(Span)
	return s
}
