package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfile begins writing a profile of the given mode ("cpu" or
// "mem") to path and returns a stop function that finishes the profile
// and closes the file. For "mem" the heap profile is captured at stop
// time, after a GC, so it reflects live allocations at the end of the
// run. An unknown mode is an error.
func StartProfile(mode, path string) (stop func() error, err error) {
	switch mode {
	case "cpu":
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		return func() error {
			pprof.StopCPUProfile()
			return f.Close()
		}, nil
	case "mem":
		return func() error {
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}, nil
	default:
		return nil, fmt.Errorf("unknown profile mode %q (want cpu or mem)", mode)
	}
}
