package obs

import (
	"strings"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.", L("kind", "read"))
	c.Add(3)
	c.Inc()
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(7)
	g.Dec()
	fc := r.FloatCounter("test_busy_seconds_total", "Busy seconds.")
	fc.Add(0.25)
	fc.Add(0.25)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total{kind=\"read\"} 4\n",
		"# HELP test_depth Queue depth.\n# TYPE test_depth gauge\ntest_depth 6\n",
		"test_busy_seconds_total 0.5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "x")
	b := r.Counter("test_total", "x")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("test_total", "x", L("k", "v"))
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "x")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1bad", "has-dash", "has space", "ünïcode"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("metric name %q accepted", name)
				}
			}()
			r.Counter(name, "x")
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("label key with dash accepted")
			}
		}()
		r.Counter("test_ok_total", "x", L("bad-key", "v"))
	}()
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10}, L("op", "get"))
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{op="get",le="0.1"} 1`,
		`test_latency_seconds_bucket{op="get",le="1"} 3`,
		`test_latency_seconds_bucket{op="get",le="10"} 4`,
		`test_latency_seconds_bucket{op="get",le="+Inf"} 5`,
		`test_latency_seconds_sum{op="get"} 56.05`,
		`test_latency_seconds_count{op="get"} 5`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryGoesInBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_h", "x", []float64{1})
	h.Observe(1) // le is an upper bound, inclusive
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), `test_h_bucket{le="1"} 1`) {
		t.Errorf("observation at bucket boundary not counted in le=\"1\":\n%s", b.String())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.GaugeFunc("test_live", "Live value.", func() float64 { return v })
	r.CounterFunc("test_ext_total", "External count.", func() float64 { return 42 }, L("tier", "local"))
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	if !strings.Contains(out, "test_live 3\n") {
		t.Errorf("gauge func not rendered:\n%s", out)
	}
	if !strings.Contains(out, `test_ext_total{tier="local"} 42`+"\n") {
		t.Errorf("counter func not rendered:\n%s", out)
	}
	v = 5
	b.Reset()
	r.WriteText(&b)
	if !strings.Contains(b.String(), "test_live 5\n") {
		t.Errorf("gauge func not re-read at render time:\n%s", b.String())
	}
}

func TestFamiliesSortedAndLabelValuesEscaped(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "z")
	r.Counter("aaa_total", "a", L("path", "a\"b\\c\nd"))
	var b strings.Builder
	r.WriteText(&b)
	out := b.String()
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, `aaa_total{path="a\"b\\c\nd"} 0`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

// TestConformance is the table-driven text-format conformance test: every
// line the shared encoder renders — across counters, float counters,
// gauges, func metrics, and labeled histograms — must pass Lint, which
// checks name charset, HELP/TYPE ordering, and histogram triples.
func TestConformance(t *testing.T) {
	cases := []struct {
		name  string
		build func(r *Registry)
	}{
		{"counter", func(r *Registry) {
			r.Counter("eend_test_total", "A counter.").Add(9)
		}},
		{"labeled_counters", func(r *Registry) {
			r.Counter("eend_test_total", "A counter.", L("kind", "a")).Inc()
			r.Counter("eend_test_total", "A counter.", L("kind", "b")).Inc()
		}},
		{"float_counter", func(r *Registry) {
			r.FloatCounter("eend_busy_seconds_total", "Busy.").Add(1.5)
		}},
		{"gauge", func(r *Registry) {
			r.Gauge("eend_depth", "Depth.").Set(-2)
		}},
		{"func_metrics", func(r *Registry) {
			r.GaugeFunc("eend_live", "Live.", func() float64 { return 0.5 })
			r.CounterFunc("eend_ext_total", "Ext.", func() float64 { return 10 }, L("tier", "remote"))
		}},
		{"histogram_bare", func(r *Registry) {
			h := r.Histogram("eend_lat_seconds", "Latency.", LatencyBuckets)
			h.Observe(0.002)
			h.Observe(120)
		}},
		{"histogram_labeled", func(r *Registry) {
			h := r.Histogram("eend_lat_seconds", "Latency.", []float64{0.01, 0.1}, L("op", "get"))
			h.Observe(0.05)
			r.Histogram("eend_lat_seconds", "Latency.", []float64{0.01, 0.1}, L("op", "put"))
		}},
		{"escaped_labels", func(r *Registry) {
			r.Counter("eend_esc_total", "Esc.", L("v", `quote " slash \ nl`+"\n")).Inc()
		}},
		{"mixed", func(r *Registry) {
			r.Counter("eend_a_total", "a").Inc()
			r.Gauge("eend_b", "b").Set(3)
			r.Histogram("eend_c_seconds", "c", RatioBuckets).Observe(42)
			r.FloatCounter("eend_d_seconds_total", "d").Add(0.1)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.build(r)
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Fatal(err)
			}
			for _, err := range Lint(b.String()) {
				t.Errorf("conformance: %v", err)
			}
			if t.Failed() {
				t.Logf("exposition:\n%s", b.String())
			}
		})
	}
}

func TestLintCatchesMalformed(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"type_after_sample", "# HELP x_total h\nx_total 1\n# TYPE x_total counter\n"},
		{"duplicate_type", "# HELP x_total h\n# TYPE x_total counter\n# TYPE x_total counter\nx_total 1\n"},
		{"bad_name", "# HELP 1bad h\n"},
		{"missing_inf", "# HELP h_s h\n# TYPE h_s histogram\nh_s_bucket{le=\"1\"} 1\nh_s_sum 1\nh_s_count 1\n"},
		{"non_cumulative", "# HELP h_s h\n# TYPE h_s histogram\nh_s_bucket{le=\"1\"} 5\nh_s_bucket{le=\"+Inf\"} 3\nh_s_sum 1\nh_s_count 3\n"},
		{"inf_count_mismatch", "# HELP h_s h\n# TYPE h_s histogram\nh_s_bucket{le=\"+Inf\"} 3\nh_s_sum 1\nh_s_count 4\n"},
		{"missing_sum", "# HELP h_s h\n# TYPE h_s histogram\nh_s_bucket{le=\"+Inf\"} 3\nh_s_count 3\n"},
		{"sample_no_help", "# TYPE x_total counter\nx_total 1\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if errs := Lint(tc.text); len(errs) == 0 {
				t.Errorf("Lint accepted malformed exposition:\n%s", tc.text)
			}
		})
	}
}
