package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text-format exposition: metric and label
// name charsets, HELP-before-TYPE-before-samples ordering, one TYPE per
// family, and well-formed histograms (cumulative _bucket series ending in
// +Inf, with matching _sum and _count). It returns every violation found,
// so a conformance test can report them all at once.
func Lint(exposition string) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type famState struct {
		helpSeen, typeSeen, sampleSeen bool
		typ                            string
		// histogram bookkeeping per child label signature (le stripped)
		buckets map[string][]float64 // le bounds in order of appearance
		bCum    map[string][]uint64  // cumulative bucket values
		sum     map[string]bool
		count   map[string]uint64
		hasCnt  map[string]bool
	}
	fams := make(map[string]*famState)
	fam := func(name string) *famState {
		f := fams[name]
		if f == nil {
			f = &famState{
				buckets: make(map[string][]float64),
				bCum:    make(map[string][]uint64),
				sum:     make(map[string]bool),
				count:   make(map[string]uint64),
				hasCnt:  make(map[string]bool),
			}
			fams[name] = f
		}
		return f
	}

	lines := strings.Split(exposition, "\n")
	for i, line := range lines {
		n := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				fail(n, "HELP for invalid metric name %q", name)
				continue
			}
			f := fam(name)
			if f.helpSeen {
				fail(n, "duplicate HELP for %s", name)
			}
			if f.typeSeen || f.sampleSeen {
				fail(n, "HELP for %s after its TYPE or samples", name)
			}
			f.helpSeen = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !validMetricName(name) {
				fail(n, "malformed TYPE line %q", line)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				fail(n, "unknown metric type %q for %s", typ, name)
			}
			f := fam(name)
			if f.typeSeen {
				fail(n, "duplicate TYPE for %s", name)
			}
			if f.sampleSeen {
				fail(n, "TYPE for %s after its samples", name)
			}
			f.typeSeen = true
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(n, "%v", err)
			continue
		}
		// Histogram series attach _bucket/_sum/_count to the family name.
		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.typ == "histogram" {
					base, suffix = trimmed, sfx
				}
				break
			}
		}
		f := fams[base]
		if f == nil || !f.typeSeen {
			fail(n, "sample %s before its TYPE", name)
			f = fam(base)
		}
		f.sampleSeen = true

		if f.typ == "histogram" {
			sig, le, hasLE := splitLE(labels)
			switch suffix {
			case "_bucket":
				if !hasLE {
					fail(n, "%s_bucket without le label", base)
					continue
				}
				bound := math.Inf(1)
				if le != "+Inf" {
					bound, err = strconv.ParseFloat(le, 64)
					if err != nil {
						fail(n, "unparseable le=%q", le)
						continue
					}
				}
				bs := f.buckets[sig]
				if len(bs) > 0 && bound <= bs[len(bs)-1] {
					fail(n, "%s buckets not in ascending le order", base)
				}
				cum := uint64(value)
				prev := f.bCum[sig]
				if len(prev) > 0 && cum < prev[len(prev)-1] {
					fail(n, "%s bucket counts not cumulative", base)
				}
				f.buckets[sig] = append(bs, bound)
				f.bCum[sig] = append(prev, cum)
			case "_sum":
				f.sum[sig] = true
			case "_count":
				f.count[sig] = uint64(value)
				f.hasCnt[sig] = true
			default:
				fail(n, "histogram %s has bare sample (want _bucket/_sum/_count)", base)
			}
		}
	}

	// Cross-line checks per family.
	for name, f := range fams {
		if f.sampleSeen && !f.helpSeen {
			errs = append(errs, fmt.Errorf("family %s has samples but no HELP", name))
		}
		if f.typ != "histogram" {
			continue
		}
		for sig, bounds := range f.buckets {
			if len(bounds) == 0 || !math.IsInf(bounds[len(bounds)-1], 1) {
				errs = append(errs, fmt.Errorf("histogram %s%s missing +Inf bucket", name, sig))
				continue
			}
			if !f.sum[sig] {
				errs = append(errs, fmt.Errorf("histogram %s%s missing _sum", name, sig))
			}
			if !f.hasCnt[sig] {
				errs = append(errs, fmt.Errorf("histogram %s%s missing _count", name, sig))
				continue
			}
			cum := f.bCum[sig]
			if inf := cum[len(cum)-1]; inf != f.count[sig] {
				errs = append(errs, fmt.Errorf("histogram %s%s +Inf bucket %d != _count %d",
					name, sig, inf, f.count[sig]))
			}
		}
		for sig := range f.hasCnt {
			if len(f.buckets[sig]) == 0 {
				errs = append(errs, fmt.Errorf("histogram %s%s has _count but no buckets", name, sig))
			}
		}
	}
	return errs
}

// parseSample splits one sample line into name, label block and value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label block in %q", line)
		}
		labels = rest[i : j+1]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return "", "", 0, fmt.Errorf("sample without value: %q", line)
		}
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	if err := lintLabels(labels); err != nil {
		return "", "", 0, err
	}
	// Value may be followed by an optional timestamp.
	valStr, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
	value, err = parseValue(valStr)
	if err != nil {
		return "", "", 0, fmt.Errorf("unparseable value %q in %q", valStr, line)
	}
	return name, labels, value, nil
}

// parseValue accepts Prometheus sample values including +Inf/-Inf/NaN.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// lintLabels validates the keys inside a rendered label block.
func lintLabels(block string) error {
	for _, key := range labelKeys(block) {
		if !validLabelKey(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
	}
	return nil
}

// labelKeys extracts the label names from a `{k="v",...}` block.
func labelKeys(block string) []string {
	if block == "" {
		return nil
	}
	var keys []string
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	for len(inner) > 0 {
		eq := strings.IndexByte(inner, '=')
		if eq < 0 {
			break
		}
		keys = append(keys, inner[:eq])
		// Skip the quoted value, honoring escapes.
		rest := inner[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			break
		}
		i := 1
		for i < len(rest) {
			if rest[i] == '\\' {
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			i++
		}
		inner = strings.TrimPrefix(strings.TrimPrefix(rest[min(i+1, len(rest)):], ","), " ")
	}
	return keys
}

// splitLE removes the le label from a rendered label block, returning the
// remaining signature and the le value.
func splitLE(block string) (sig, le string, ok bool) {
	if block == "" {
		return "", "", false
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	var kept []string
	for _, part := range splitLabelParts(inner) {
		key, val, found := strings.Cut(part, "=")
		if found && key == "le" {
			le = strings.Trim(val, `"`)
			ok = true
			continue
		}
		kept = append(kept, part)
	}
	if len(kept) == 0 {
		return "", le, ok
	}
	return "{" + strings.Join(kept, ",") + "}", le, ok
}

// splitLabelParts splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabelParts(inner string) []string {
	var parts []string
	start, inQuote := 0, false
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, inner[start:i])
				start = i + 1
			}
		}
	}
	if start < len(inner) {
		parts = append(parts, inner[start:])
	}
	return parts
}
