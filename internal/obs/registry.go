package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one static key=value pair attached to a metric at registration.
type Label struct{ Key, Value string }

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric (sums of
// seconds, joules — quantities without a natural integer unit).
type FloatCounter struct{ bits atomic.Uint64 }

// Add adds v (v < 0 is ignored: counters never decrease).
func (c *FloatCounter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current sum.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an integer metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric. Buckets are upper
// bounds in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; the last is +Inf
	sum    atomic.Uint64   // float64 bits
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start. Handy in defers:
// the start argument is captured when the defer statement runs.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Common bucket layouts.
var (
	// LatencyBuckets spans sub-millisecond cache reads to minute-long
	// simulation batches (seconds).
	LatencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
	// RatioBuckets spans the sim-time/wall-time speedup ratio: below 1
	// (slower than real time) to 10^5 x real time.
	RatioBuckets = []float64{0.1, 1, 10, 100, 1000, 10000, 100000}
)

// kind discriminates a family's instrument type.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// child is one labeled instrument within a family.
type child struct {
	labels  string // rendered label set: `{a="b",c="d"}` or ""
	counter *Counter
	fcount  *FloatCounter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // CounterFunc/GaugeFunc children
}

// family is all instruments sharing one metric name.
type family struct {
	name, help string
	kind       kind
	children   map[string]*child
	order      []string // registration order of child label sets
}

// Registry is a set of metric families rendered together. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name and labels, creating
// it on first use. Registering the same (name, labels) twice returns the
// same instrument; reusing a name with a different metric type panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.child(name, help, kindCounter, labels)
	if c.counter == nil {
		c.counter = &Counter{}
	}
	return c.counter
}

// FloatCounter returns the float counter registered under name and labels.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	c := r.child(name, help, kindCounter, labels)
	if c.fcount == nil {
		c.fcount = &FloatCounter{}
	}
	return c.fcount
}

// Gauge returns the gauge registered under name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.child(name, help, kindGauge, labels)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// Histogram returns the histogram registered under name and labels, with
// the given ascending bucket upper bounds (an implicit +Inf bucket is
// always added).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	c := r.child(name, help, kindHistogram, labels)
	if c.hist == nil {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("obs: histogram %s buckets not ascending", name))
			}
		}
		c.hist = &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]atomic.Uint64, len(buckets)+1),
		}
	}
	return c.hist
}

// CounterFunc registers a counter whose value is read live from fn at
// render time (lifetime totals kept by another component, like a cache
// store's own counters). Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.child(name, help, kindCounter, labels).fn = fn
}

// GaugeFunc registers a gauge read live from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.child(name, help, kindGauge, labels).fn = fn
}

// child finds or creates the instrument slot for (name, labels).
func (r *Registry) child(name, help string, k kind, labels []Label) *child {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, children: make(map[string]*child)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, k, f.kind))
	}
	c := f.children[ls]
	if c == nil {
		c = &child{labels: ls}
		f.children[ls] = c
		f.order = append(f.order, ls)
	}
	return c
}

// validMetricName enforces the Prometheus metric-name charset.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, ch := range name {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch == '_', ch == ':':
		case ch >= '0' && ch <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels renders a label set as `{k1="v1",k2="v2"}` with escaped
// values, or "" for no labels. Labels render in the order given; the
// caller's declaration order is part of the metric's identity.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// validLabelKey enforces the Prometheus label-name charset.
func validLabelKey(key string) bool {
	if key == "" {
		return false
	}
	for i, ch := range key {
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch == '_':
		case ch >= '0' && ch <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabelValue(v string) string { return labelEscaper.Replace(v) }

// formatFloat renders a sample value: plain decimal notation, shortest
// exact representation ("0", "42", "0.25").
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// WriteText renders every family in the Prometheus text exposition format
// (version 0.0.4): families sorted by name, one HELP and TYPE comment per
// family, children in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, helpEscaper.Replace(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, ls := range f.order {
			c := f.children[ls]
			switch {
			case c.hist != nil:
				writeHistogram(&b, f.name, c)
			case c.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, c.labels, formatFloat(c.fn()))
			case c.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, c.labels, c.counter.Value())
			case c.fcount != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, c.labels, formatFloat(c.fcount.Value()))
			case c.gauge != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, c.labels, c.gauge.Value())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram child: cumulative _bucket samples
// (le labels appended to the child's own), then _sum and _count.
func writeHistogram(b *strings.Builder, name string, c *child) {
	h := c.hist
	// Splice the le label into the child's label set.
	leLabel := func(le string) string {
		if c.labels == "" {
			return `{le="` + le + `"}`
		}
		return c.labels[:len(c.labels)-1] + `,le="` + le + `"}`
	}
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, leLabel(strconv.FormatFloat(bound, 'g', -1, 64)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, leLabel("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, c.labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, c.labels, cum)
}
