package traffic

import (
	"math/rand/v2"
	"testing"
	"time"

	"eend/internal/sim"
)

func TestFlowInterval(t *testing.T) {
	// 128 B at 2048 bit/s -> 0.5 s between packets (2 packets/s).
	f := Flow{Rate: 2048, PacketBytes: 128}
	if got := f.Interval(); got != 500*time.Millisecond {
		t.Fatalf("Interval = %v, want 500ms", got)
	}
	if (Flow{}).Interval() != 0 {
		t.Fatal("zero flow should have zero interval")
	}
}

func TestFlowValidate(t *testing.T) {
	good := Flow{ID: 1, Src: 0, Dst: 1, Rate: 1000, PacketBytes: 128}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Flow{
		{Src: 1, Dst: 1, Rate: 1, PacketBytes: 1},
		{Src: 0, Dst: 1, Rate: 0, PacketBytes: 1},
		{Src: 0, Dst: 1, Rate: 1, PacketBytes: 0},
		{Src: 0, Dst: 1, Rate: 1, PacketBytes: 1, StartMin: 2, StartMax: 1},
	}
	for i, f := range bad {
		if f.Validate() == nil {
			t.Errorf("bad flow %d validated", i)
		}
	}
}

func TestSourceEmitsAtRate(t *testing.T) {
	s := sim.New(1)
	col := NewCollector()
	var got []*Datum
	send := func(dst int, bytes int, payload any, rate float64) {
		if dst != 5 || bytes != 128 || rate != 2048 {
			t.Errorf("send(%d,%d,rate=%v)", dst, bytes, rate)
		}
		got = append(got, payload.(*Datum))
	}
	f := Flow{ID: 3, Src: 0, Dst: 5, Rate: 2048, PacketBytes: 128,
		StartMin: time.Second, StartMax: time.Second}
	src, err := NewSource(s, f, send, col, 11*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	s.Run(11 * time.Second)
	// Start at 1 s, 2 packets/s until 11 s -> 21 packets (t=1.0,1.5,...,10.5, 11.0 excluded by horizon).
	if len(got) != 20 && len(got) != 21 {
		t.Fatalf("emitted %d packets, want ~20", len(got))
	}
	if col.Sent() != uint64(len(got)) {
		t.Fatalf("collector sent=%d, emitted=%d", col.Sent(), len(got))
	}
	for i, d := range got {
		if d.Flow != 3 || d.Seq != uint64(i+1) {
			t.Fatalf("packet %d = %+v", i, d)
		}
	}
}

func TestSourceRandomStartWindow(t *testing.T) {
	starts := make(map[time.Duration]bool)
	for seed := uint64(0); seed < 10; seed++ {
		s := sim.New(seed)
		var first sim.Time = -1
		f := Flow{ID: 1, Src: 0, Dst: 1, Rate: 1024, PacketBytes: 128,
			StartMin: 20 * time.Second, StartMax: 25 * time.Second}
		src, err := NewSource(s, f, func(int, int, any, float64) {
			if first < 0 {
				first = s.Now()
			}
		}, nil, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		src.Start()
		s.Run(30 * time.Second)
		if first < 20*time.Second || first > 25*time.Second {
			t.Fatalf("seed %d: first packet at %v, want in [20s,25s]", seed, first)
		}
		starts[first] = true
	}
	if len(starts) < 3 {
		t.Fatal("start times should vary across seeds")
	}
}

func TestNewSourceValidation(t *testing.T) {
	s := sim.New(1)
	if _, err := NewSource(s, Flow{}, func(int, int, any, float64) {}, nil, time.Second); err == nil {
		t.Fatal("invalid flow accepted")
	}
	good := Flow{ID: 1, Src: 0, Dst: 1, Rate: 1, PacketBytes: 1}
	if _, err := NewSource(s, good, nil, nil, time.Second); err == nil {
		t.Fatal("nil send accepted")
	}
}

func TestCollectorAccounting(t *testing.T) {
	c := NewCollector()
	c.OnSend(1)
	c.OnSend(1)
	c.OnSend(2)
	c.OnDeliver(1, 128)
	c.OnDeliver(2, 128)
	if c.Sent() != 3 || c.Delivered() != 2 {
		t.Fatalf("sent=%d delivered=%d", c.Sent(), c.Delivered())
	}
	if got := c.DeliveryRatio(); got != 2.0/3.0 {
		t.Fatalf("ratio = %v", got)
	}
	if got := c.FlowDeliveryRatio(1); got != 0.5 {
		t.Fatalf("flow 1 ratio = %v", got)
	}
	if got := c.FlowDeliveryRatio(2); got != 1.0 {
		t.Fatalf("flow 2 ratio = %v", got)
	}
	if got := c.DeliveredBits(); got != 2*128*8 {
		t.Fatalf("bits = %v", got)
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector()
	if c.DeliveryRatio() != 1 {
		t.Fatal("empty collector ratio should be 1")
	}
	if c.FlowDeliveryRatio(9) != 1 {
		t.Fatal("unknown flow ratio should be 1")
	}
}

func TestRandomFlowsShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0x5bd1e995))
	flows := RandomFlows(rng, 10, 30, 2048, 128)
	if len(flows) != 10 {
		t.Fatalf("got %d flows, want 10", len(flows))
	}
	for i, f := range flows {
		if f.ID != i+1 {
			t.Errorf("flow %d has ID %d, want %d", i, f.ID, i+1)
		}
		if f.Src == f.Dst {
			t.Errorf("flow %d has src == dst == %d", i, f.Src)
		}
		if f.Src < 0 || f.Src >= 30 || f.Dst < 0 || f.Dst >= 30 {
			t.Errorf("flow %d endpoints (%d,%d) out of range", i, f.Src, f.Dst)
		}
		if f.Rate != 2048 || f.PacketBytes != 128 {
			t.Errorf("flow %d rate/packet = %g/%d", i, f.Rate, f.PacketBytes)
		}
		if f.StartMin != 20*time.Second || f.StartMax != 25*time.Second {
			t.Errorf("flow %d start window = %v-%v, want the paper's 20-25 s", i, f.StartMin, f.StartMax)
		}
		if err := f.Validate(); err != nil {
			t.Errorf("flow %d invalid: %v", i, err)
		}
	}
}

func TestRandomFlowsDeterministicPerSeed(t *testing.T) {
	mk := func() []Flow {
		return RandomFlows(rand.New(rand.NewPCG(7, 7)), 5, 12, 1024, 128)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs across identical RNGs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRandomFlowsEdgeCases(t *testing.T) {
	if got := RandomFlows(nil, 0, 10, 1024, 128); got != nil {
		t.Fatalf("zero flows should return nil, got %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RandomFlows with 1 node should panic")
		}
	}()
	RandomFlows(rand.New(rand.NewPCG(1, 1)), 1, 1, 1024, 128)
}
