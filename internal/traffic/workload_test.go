package traffic

import (
	"math/rand/v2"
	"testing"
	"time"

	"eend/internal/sim"
)

func workloadRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 42)) }

func TestFlowStopValidate(t *testing.T) {
	base := Flow{ID: 1, Src: 0, Dst: 1, Rate: 1024, PacketBytes: 128,
		StartMin: 20 * time.Second, StartMax: 25 * time.Second}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	ok := base
	ok.Stop = 40 * time.Second
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := base
	bad.Stop = 22 * time.Second // inside the start window
	if bad.Validate() == nil {
		t.Error("Validate accepted Stop inside the start window")
	}
}

func TestSourceHonorsStop(t *testing.T) {
	s := sim.New(1)
	flow := Flow{ID: 1, Src: 0, Dst: 1, Rate: 1024, PacketBytes: 128,
		StartMin: time.Second, StartMax: time.Second, Stop: 5 * time.Second}
	col := NewCollector()
	sent := 0
	src, err := NewSource(s, flow, func(int, int, any, float64) { sent++ }, col, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	s.Run(60 * time.Second)
	// 1 Kbit/s, 128 B packets -> one packet per second; start 1 s, stop 5 s.
	if sent < 3 || sent > 5 {
		t.Fatalf("sent %d packets, want ~4 (stopped at 5s, not the 60s horizon)", sent)
	}
}

func TestBurstyFlowsShape(t *testing.T) {
	const (
		n, nodes, bursts = 3, 20, 4
		burstLen         = 10 * time.Second
		period           = 30 * time.Second
	)
	flows := BurstyFlows(workloadRNG(7), n, nodes, 2048, 128, bursts, burstLen, period)
	if len(flows) != n*bursts {
		t.Fatalf("len = %d, want %d", len(flows), n*bursts)
	}
	for i, f := range flows {
		if f.ID != i+1 {
			t.Fatalf("flow %d has ID %d, want contiguous 1-based IDs", i, f.ID)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("flow %d invalid: %v", i, err)
		}
		if f.Stop-f.StartMin != burstLen {
			t.Fatalf("flow %d on-period %v, want %v", i, f.Stop-f.StartMin, burstLen)
		}
		// All bursts of one pair share endpoints; periods are spaced apart.
		pair := i / bursts
		if f.Src != flows[pair*bursts].Src || f.Dst != flows[pair*bursts].Dst {
			t.Fatalf("flow %d endpoints differ from its pair's first burst", i)
		}
		j := i % bursts
		if want := 20*time.Second + time.Duration(j)*period; f.StartMin != want {
			t.Fatalf("flow %d opens at %v, want %v", i, f.StartMin, want)
		}
	}
}

func TestBurstyFlowsDeterministic(t *testing.T) {
	a := BurstyFlows(workloadRNG(9), 5, 30, 2048, 128, 3, 10*time.Second, 40*time.Second)
	b := BurstyFlows(workloadRNG(9), 5, 30, 2048, 128, 3, 10*time.Second, 40*time.Second)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("flow %d differs across equal seeds", i)
		}
	}
}

func TestConvergecastFlowsShape(t *testing.T) {
	const n, nodes, sink = 8, 12, 5
	flows, err := ConvergecastFlows(workloadRNG(3), n, nodes, sink, 2048, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != n {
		t.Fatalf("len = %d, want %d", len(flows), n)
	}
	seen := map[int]bool{}
	for _, f := range flows {
		if f.Dst != sink {
			t.Fatalf("flow %d sinks at %d, want %d", f.ID, f.Dst, sink)
		}
		if f.Src == sink {
			t.Fatalf("flow %d sources at the sink", f.ID)
		}
		if seen[f.Src] {
			t.Fatalf("source %d drawn twice", f.Src)
		}
		seen[f.Src] = true
		if err := f.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConvergecastFlowsErrors(t *testing.T) {
	if _, err := ConvergecastFlows(workloadRNG(1), 5, 5, 0, 1024, 128); err == nil {
		t.Error("accepted more sources than non-sink nodes")
	}
	if _, err := ConvergecastFlows(workloadRNG(1), 2, 5, 9, 1024, 128); err == nil {
		t.Error("accepted an out-of-range sink")
	}
}
