// Package traffic provides the constant-bit-rate (CBR) sources and the
// delivery accounting used throughout the paper's evaluation: flows of
// fixed-size packets (128 B) at 2-200 Kbit/s, starting at a random time in
// a configured window.
package traffic

import (
	"fmt"
	"math/rand/v2"
	"time"

	"eend/internal/sim"
)

// Flow describes one CBR flow.
type Flow struct {
	ID          int     `json:"id"`
	Src         int     `json:"src"`
	Dst         int     `json:"dst"`
	Rate        float64 `json:"rate_bps"` // bit/s
	PacketBytes int     `json:"packet_bytes"`
	// StartMin/StartMax bound the random start time (paper: 20-25 s).
	StartMin time.Duration `json:"start_min_ns"`
	StartMax time.Duration `json:"start_max_ns"`
	// Stop, when positive, ends origination at that simulation time instead
	// of the horizon. Bursty workloads model each on-period as one flow
	// segment bounded by Stop.
	Stop time.Duration `json:"stop_ns,omitempty"`
}

// Interval returns the inter-packet gap.
func (f Flow) Interval() time.Duration {
	if f.Rate <= 0 || f.PacketBytes <= 0 {
		return 0
	}
	bits := float64(f.PacketBytes * 8)
	return time.Duration(bits / f.Rate * float64(time.Second))
}

// Validate reports configuration errors.
func (f Flow) Validate() error {
	switch {
	case f.Src == f.Dst:
		return fmt.Errorf("traffic: flow %d has src == dst", f.ID)
	case f.Rate <= 0:
		return fmt.Errorf("traffic: flow %d has non-positive rate", f.ID)
	case f.PacketBytes <= 0:
		return fmt.Errorf("traffic: flow %d has non-positive packet size", f.ID)
	case f.StartMax < f.StartMin:
		return fmt.Errorf("traffic: flow %d has StartMax < StartMin", f.ID)
	case f.Stop != 0 && f.Stop <= f.StartMax:
		return fmt.Errorf("traffic: flow %d stops at %v, before its start window ends", f.ID, f.Stop)
	}
	return nil
}

// RandomFlows draws n CBR flows with distinct random endpoints among nodes
// [0, nodes), each at rate bit/s with packetBytes-byte packets, starting at
// a random time in the paper's 20-25 s window. Flow IDs are 1-based. The
// caller supplies the RNG so endpoint choice stays deterministic per seed
// (see network.EndpointRNG).
func RandomFlows(rng *rand.Rand, n, nodes int, rate float64, packetBytes int) []Flow {
	if n <= 0 {
		return nil
	}
	if nodes < 2 {
		panic("traffic: RandomFlows needs at least 2 nodes for distinct endpoints")
	}
	flows := make([]Flow, n)
	for i := range flows {
		src := rng.IntN(nodes)
		dst := rng.IntN(nodes)
		for dst == src {
			dst = rng.IntN(nodes)
		}
		flows[i] = Flow{
			ID: i + 1, Src: src, Dst: dst,
			Rate: rate, PacketBytes: packetBytes,
			StartMin: startWindowMin, StartMax: startWindowMax,
		}
	}
	return flows
}

// Datum is the application payload carried by each CBR packet.
type Datum struct {
	Flow int
	Seq  uint64
}

// SendFunc originates an application packet at the flow source.
type SendFunc func(dst int, bytes int, payload any, rate float64)

// Collector aggregates per-flow delivery statistics.
type Collector struct {
	sent      map[int]uint64
	delivered map[int]uint64
	bits      map[int]float64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		sent:      make(map[int]uint64),
		delivered: make(map[int]uint64),
		bits:      make(map[int]float64),
	}
}

// OnSend records an originated packet.
func (c *Collector) OnSend(flow int) { c.sent[flow]++ }

// OnDeliver records a packet arriving at its sink.
func (c *Collector) OnDeliver(flow int, bytes int) {
	c.delivered[flow]++
	c.bits[flow] += float64(bytes * 8)
}

// Sent returns the total packets originated (all flows).
func (c *Collector) Sent() uint64 {
	var n uint64
	for _, v := range c.sent {
		n += v
	}
	return n
}

// Delivered returns the total packets delivered (all flows).
func (c *Collector) Delivered() uint64 {
	var n uint64
	for _, v := range c.delivered {
		n += v
	}
	return n
}

// DeliveredBits returns the total application bits delivered.
func (c *Collector) DeliveredBits() float64 {
	var b float64
	for _, v := range c.bits {
		b += v
	}
	return b
}

// DeliveryRatio returns delivered/sent over all flows (1 if nothing sent).
func (c *Collector) DeliveryRatio() float64 {
	s := c.Sent()
	if s == 0 {
		return 1
	}
	return float64(c.Delivered()) / float64(s)
}

// FlowDeliveryRatio returns the ratio for one flow.
func (c *Collector) FlowDeliveryRatio(flow int) float64 {
	if c.sent[flow] == 0 {
		return 1
	}
	return float64(c.delivered[flow]) / float64(c.sent[flow])
}

// Source drives one CBR flow: it schedules packet origination on the
// simulator until the horizon and reports each send to the collector.
type Source struct {
	sim    *sim.Simulator
	flow   Flow
	send   SendFunc
	col    *Collector
	until  sim.Time
	seq    uint64
	emitFn func() // pre-bound emit so per-packet rescheduling never allocates
}

// NewSource creates a CBR source; Start must be called to begin.
func NewSource(s *sim.Simulator, flow Flow, send SendFunc, col *Collector, until sim.Time) (*Source, error) {
	if err := flow.Validate(); err != nil {
		return nil, err
	}
	if send == nil {
		return nil, fmt.Errorf("traffic: flow %d has nil send func", flow.ID)
	}
	src := &Source{sim: s, flow: flow, send: send, col: col, until: until}
	src.emitFn = src.emit
	return src, nil
}

// Start schedules the first packet at a random time in the start window.
func (s *Source) Start() {
	start := s.flow.StartMin
	if w := s.flow.StartMax - s.flow.StartMin; w > 0 {
		start += time.Duration(s.sim.RNG().Int64N(int64(w)))
	}
	schedule(s.sim, start, s.emitFn)
}

func (s *Source) emit() {
	if s.sim.Now() >= s.until {
		return
	}
	if s.flow.Stop > 0 && s.sim.Now() >= s.flow.Stop {
		return
	}
	s.seq++
	if s.col != nil {
		s.col.OnSend(s.flow.ID)
	}
	s.send(s.flow.Dst, s.flow.PacketBytes, &Datum{Flow: s.flow.ID, Seq: s.seq}, s.flow.Rate)
	schedule(s.sim, s.flow.Interval(), s.emitFn)
}

// Sent returns the number of packets this source has originated.
func (s *Source) Sent() uint64 { return s.seq }
