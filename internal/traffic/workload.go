package traffic

import (
	"fmt"
	"math/rand/v2"
	"time"
)

// startWindow is the paper's flow start window (20-25 s into the run).
const (
	startWindowMin = 20 * time.Second
	startWindowMax = 25 * time.Second
)

// BurstyFlows draws n endpoint pairs with distinct random endpoints among
// nodes [0, nodes) and gives each pair `bursts` on-periods: burst j of a
// pair is one flow segment starting at a random time in the first fifth of
// its on-period and stopping burstLen after the period opens, with periods
// spaced `period` apart from the paper's 20 s mark. The result is on/off
// traffic that exercises power-management wake/sleep cycling in a way
// constant-bit-rate flows never do. Flow IDs are 1-based and contiguous
// (pair-major), so len(result) == n*bursts.
func BurstyFlows(rng *rand.Rand, n, nodes int, rate float64, packetBytes, bursts int, burstLen, period time.Duration) []Flow {
	if n <= 0 || bursts <= 0 {
		return nil
	}
	if nodes < 2 {
		panic("traffic: BurstyFlows needs at least 2 nodes for distinct endpoints")
	}
	if period < burstLen {
		panic("traffic: BurstyFlows needs period >= burstLen")
	}
	flows := make([]Flow, 0, n*bursts)
	for i := 0; i < n; i++ {
		src := rng.IntN(nodes)
		dst := rng.IntN(nodes)
		for dst == src {
			dst = rng.IntN(nodes)
		}
		for j := 0; j < bursts; j++ {
			open := startWindowMin + time.Duration(j)*period
			flows = append(flows, Flow{
				ID: len(flows) + 1, Src: src, Dst: dst,
				Rate: rate, PacketBytes: packetBytes,
				StartMin: open,
				StartMax: open + burstLen/5,
				Stop:     open + burstLen,
			})
		}
	}
	return flows
}

// ConvergecastFlows draws n distinct random source nodes, all sending to
// the single sink node — the many-to-one pattern of sensor-network data
// collection, which concentrates relay load around the sink. Sources are
// drawn from [0, nodes) excluding the sink, so it needs n <= nodes-1.
func ConvergecastFlows(rng *rand.Rand, n, nodes, sink int, rate float64, packetBytes int) ([]Flow, error) {
	if n <= 0 {
		return nil, nil
	}
	if sink < 0 || sink >= nodes {
		return nil, fmt.Errorf("traffic: convergecast sink %d out of range [0,%d)", sink, nodes)
	}
	if n > nodes-1 {
		return nil, fmt.Errorf("traffic: convergecast needs %d distinct sources but only %d nodes besides the sink", n, nodes-1)
	}
	used := make(map[int]bool, n)
	flows := make([]Flow, 0, n)
	for len(flows) < n {
		src := rng.IntN(nodes)
		if src == sink || used[src] {
			continue
		}
		used[src] = true
		flows = append(flows, Flow{
			ID: len(flows) + 1, Src: src, Dst: sink,
			Rate: rate, PacketBytes: packetBytes,
			StartMin: startWindowMin, StartMax: startWindowMax,
		})
	}
	return flows, nil
}
