package jobs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestJournalReplayMarksInterrupted is the satellite's core contract: a
// job left running by a dead process is reported Failed after restart,
// with the interruption recorded as its error.
func TestJournalReplayMarksInterrupted(t *testing.T) {
	dir := t.TempDir()
	base := context.Background()
	s1, err := NewJournaled[payload](base, dir, Options{Prefix: "sweep"})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	j := s1.Start(nil, func(ctx context.Context, j *Job[payload]) error {
		<-block
		return nil
	})
	done := s1.Start(nil, func(ctx context.Context, j *Job[payload]) error { return nil })
	waitStatus(t, done, Done)

	// "Restart": a second store over the same state dir, while the first
	// process's job never got to record a terminal status.
	s2, err := NewJournaled[payload](base, dir, Options{Prefix: "sweep"})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(j.ID())
	if !ok {
		t.Fatalf("interrupted job %s not replayed", j.ID())
	}
	status, errText, _ := got.Snapshot()
	if status != Failed || !strings.Contains(errText, "interrupted") {
		t.Fatalf("replayed job = (%s, %q), want failed/interrupted", status, errText)
	}
	// The cleanly finished job is not resurrected.
	if _, ok := s2.Get(done.ID()); ok {
		t.Error("finished job replayed as live state")
	}
	close(block)
}

// TestJournalSequenceContinues: a restarted store must not reissue ids the
// previous process already handed to clients.
func TestJournalSequenceContinues(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewJournaled[payload](context.Background(), dir, Options{Prefix: "opt"})
	if err != nil {
		t.Fatal(err)
	}
	j1 := s1.Start(nil, func(context.Context, *Job[payload]) error { return nil })
	waitStatus(t, j1, Done)
	if j1.ID() != "opt-1" {
		t.Fatalf("first id = %s", j1.ID())
	}

	s2, err := NewJournaled[payload](context.Background(), dir, Options{Prefix: "opt"})
	if err != nil {
		t.Fatal(err)
	}
	j2 := s2.Start(nil, func(context.Context, *Job[payload]) error { return nil })
	waitStatus(t, j2, Done)
	if j2.ID() != "opt-2" {
		t.Fatalf("post-restart id = %s, want opt-2", j2.ID())
	}
}

// TestJournalCompaction: restarting over and over must not grow the
// journal — each open rewrites it down to the interrupted set.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		s, err := NewJournaled[payload](context.Background(), dir, Options{Prefix: "c"})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			j := s.Start(nil, func(context.Context, *Job[payload]) error { return nil })
			waitStatus(t, j, Done)
		}
		s.Close()
	}
	s, err := NewJournaled[payload](context.Background(), dir, Options{Prefix: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 0 {
		t.Fatalf("%d jobs replayed from cleanly finished history, want 0", n)
	}
	data, err := os.ReadFile(filepath.Join(dir, "c.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("compacted journal still holds %d bytes: %q", len(data), data)
	}
}

// TestJournalSurvivesTornTail: replay must tolerate a torn last line (the
// crash happened mid-append) and keep every parsable record.
func TestJournalSurvivesTornTail(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewJournaled[payload](context.Background(), dir, Options{Prefix: "t"})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	defer close(block)
	j := s1.Start(nil, func(context.Context, *Job[payload]) error { <-block; return nil })

	path := filepath.Join(dir, "t.journal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"id":"t-9","seq":9,"stat`) // torn mid-record
	f.Close()

	s2, err := NewJournaled[payload](context.Background(), dir, Options{Prefix: "t"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(j.ID()); !ok {
		t.Fatal("record before the torn tail was lost")
	}
}

// TestJournaledStoreStillEvicts: replayed failures count as finished jobs
// and age out under the retention cap like any other.
func TestJournaledStoreStillEvicts(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewJournaled[payload](context.Background(), dir, Options{Prefix: "e", Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	defer close(block)
	for i := 0; i < 5; i++ {
		s1.Start(nil, func(context.Context, *Job[payload]) error { <-block; return nil })
	}
	s2, err := NewJournaled[payload](context.Background(), dir, Options{Prefix: "e", Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	if n := s2.Len(); n > 2 {
		t.Fatalf("replay retained %d jobs over a cap of 2", n)
	}
}

// waitStatus polls a job until it reaches want (or the test times out).
func waitStatus[V any](t *testing.T, j *Job[V], want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.Status() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (now %s)", j.ID(), want, j.Status())
}
