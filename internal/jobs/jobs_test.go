package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// payload is a minimal endpoint-style job payload.
type payload struct {
	Total int
	Done  int
}

// wait polls a job until it leaves Running.
func wait[V any](t *testing.T, j *Job[V]) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.Status(); st != Running {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s did not finish", j.ID())
	return Running
}

func TestLifecycleDone(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{Prefix: "test"})
	j := s.Start(
		func(v *payload) { v.Total = 3 },
		func(ctx context.Context, j *Job[payload]) error {
			for i := 0; i < 3; i++ {
				j.Update(func(v *payload) { v.Done++ })
			}
			return nil
		})
	if j.ID() != "test-1" {
		t.Fatalf("id = %q, want test-1", j.ID())
	}
	if st, _, v := j.Snapshot(); v.Total != 3 || st == "" {
		t.Fatalf("init did not seed the payload: %+v", v)
	}
	if got := wait(t, j); got != Done {
		t.Fatalf("status = %q, want done", got)
	}
	if _, errText, v := j.Snapshot(); v.Done != 3 || errText != "" {
		t.Fatalf("final payload %+v errText %q", v, errText)
	}
}

func TestLifecycleFailed(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{})
	j := s.Start(nil, func(ctx context.Context, j *Job[payload]) error {
		return errors.New("kaboom")
	})
	if got := wait(t, j); got != Failed {
		t.Fatalf("status = %q, want failed", got)
	}
	if _, errText, _ := j.Snapshot(); errText != "kaboom" {
		t.Fatalf("errText = %q", errText)
	}
}

func TestLifecycleCancelled(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{})
	started := make(chan struct{})
	j := s.Start(nil, func(ctx context.Context, j *Job[payload]) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	j.Cancel()
	if got := wait(t, j); got != Cancelled {
		t.Fatalf("status = %q, want cancelled", got)
	}
	// A cancelled job records no failure text: the client asked for it.
	if _, errText, _ := j.Snapshot(); errText != "" {
		t.Fatalf("cancelled job has errText %q", errText)
	}
}

// TestCancelledBeatsError: an error returned after the ctx was cancelled
// reads as a cancellation, not a failure — in-flight work aborting with an
// error is the mechanism of cancellation, not a fault.
func TestCancelledBeatsError(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{})
	started := make(chan struct{})
	j := s.Start(nil, func(ctx context.Context, j *Job[payload]) error {
		close(started)
		<-ctx.Done()
		return errors.New("simulation aborted")
	})
	<-started
	j.Cancel()
	if got := wait(t, j); got != Cancelled {
		t.Fatalf("status = %q, want cancelled", got)
	}
}

func TestBaseContextCancelsJobs(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	s := NewStore[payload](base, Options{})
	started := make(chan struct{})
	j := s.Start(nil, func(ctx context.Context, j *Job[payload]) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	cancel()
	if got := wait(t, j); got != Cancelled {
		t.Fatalf("status = %q, want cancelled after base shutdown", got)
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{Prefix: "r", Retain: 3})
	if s.Retain() != 3 {
		t.Fatalf("retain = %d", s.Retain())
	}
	for i := 0; i < 6; i++ {
		j := s.Start(nil, func(ctx context.Context, j *Job[payload]) error { return nil })
		wait(t, j)
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("retained %d jobs, want 3", got)
	}
	// The oldest were evicted; the newest three remain, newest first.
	jobs := s.Jobs()
	want := []string{"r-6", "r-5", "r-4"}
	for i, j := range jobs {
		if j.ID() != want[i] {
			t.Fatalf("jobs[%d] = %s, want %s (full: %v)", i, j.ID(), want[i], ids(jobs))
		}
	}
	if _, ok := s.Get("r-1"); ok {
		t.Fatal("evicted job still retrievable")
	}
}

func TestRetentionNeverEvictsRunning(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{Retain: 2})
	release := make(chan struct{})
	var running []*Job[payload]
	for i := 0; i < 4; i++ {
		running = append(running, s.Start(nil, func(ctx context.Context, j *Job[payload]) error {
			<-release
			return nil
		}))
	}
	// Four running jobs exceed the cap but must all survive.
	if got := s.Len(); got != 4 {
		t.Fatalf("retained %d, want all 4 running jobs", got)
	}
	close(release)
	for _, j := range running {
		wait(t, j)
	}
}

func TestJobsNewestFirstNumeric(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{Prefix: "n", Retain: 64})
	for i := 0; i < 11; i++ {
		wait(t, s.Start(nil, func(ctx context.Context, j *Job[payload]) error { return nil }))
	}
	jobs := s.Jobs()
	if len(jobs) != 11 || jobs[0].ID() != "n-11" || jobs[10].ID() != "n-1" {
		t.Fatalf("order = %v", ids(jobs))
	}
}

func TestDefaults(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{})
	if s.Retain() != DefaultRetain {
		t.Fatalf("default retain = %d, want %d", s.Retain(), DefaultRetain)
	}
	j := s.Start(nil, func(ctx context.Context, j *Job[payload]) error { return nil })
	if j.ID() != "job-1" {
		t.Fatalf("default prefix id = %q", j.ID())
	}
	if j.Created().IsZero() {
		t.Fatal("created time not stamped")
	}
	wait(t, j)
}

// finalPayload marks its result through Finalize only.
type finalPayload struct {
	Progress int
	Result   bool
}

// TestFinalizeAtomicWithStatus: a poller must never observe the final
// result on a still-running job — Finalize applies in the same critical
// section as the status transition.
func TestFinalizeAtomicWithStatus(t *testing.T) {
	s := NewStore[finalPayload](context.Background(), Options{})
	release := make(chan struct{})
	j := s.Start(nil, func(ctx context.Context, j *Job[finalPayload]) error {
		for i := 0; i < 100; i++ {
			j.Update(func(v *finalPayload) { v.Progress++ })
		}
		j.Finalize(func(v *finalPayload) { v.Result = true })
		<-release
		return nil
	})
	stop := make(chan struct{})
	violated := make(chan string, 1)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if st, _, v := j.Snapshot(); v.Result && st == Running {
					select {
					case violated <- "final result visible on a running job":
					default:
					}
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // pollers race the registered finalizer
	close(release)
	if got := wait(t, j); got != Done {
		t.Fatalf("status = %q", got)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-violated:
		t.Fatal(msg)
	default:
	}
	if _, _, v := j.Snapshot(); !v.Result || v.Progress != 100 {
		t.Fatalf("finalizer did not apply: %+v", v)
	}
}

func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	s := NewStore[payload](context.Background(), Options{})
	j := s.Start(
		func(v *payload) { v.Total = 1000 },
		func(ctx context.Context, j *Job[payload]) error {
			for i := 0; i < 1000; i++ {
				j.Update(func(v *payload) { v.Done++ })
			}
			return nil
		})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, _, v := j.Snapshot(); v.Done < 0 || v.Done > 1000 {
					panic(fmt.Sprintf("torn payload: %+v", v))
				}
			}
		}()
	}
	wg.Wait()
	wait(t, j)
	if _, _, v := j.Snapshot(); v.Done != 1000 {
		t.Fatalf("final Done = %d", v.Done)
	}
}

func ids[V any](jobs []*Job[V]) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID()
	}
	return out
}
