package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// A journal persists job status transitions as JSON lines in
// <dir>/<prefix>.journal, two records per job lifetime:
//
//	{"id":"sweep-3","seq":3,"status":"running","time":"..."}
//	{"id":"sweep-3","seq":3,"status":"done","time":"..."}
//
// On restart the store replays the journal: a job whose last record is
// still "running" was interrupted by the crash or restart, and is
// resurrected as Failed — a poller holding its id learns the truth instead
// of a 404 that looks like an expired job. Replay also continues the id
// sequence, so restarted daemons never reuse a live client's job id.
//
// The journal is an availability aid, not a durability contract: records
// are appended without fsync, and replay skips torn or unparsable lines
// (at worst, a job created in the crashing instant is forgotten — which is
// indistinguishable from crashing before it was created).
type journal struct {
	path string

	mu sync.Mutex
	f  *os.File
}

// record is one journal line.
type record struct {
	ID     string    `json:"id"`
	Seq    int       `json:"seq"`
	Status Status    `json:"status"`
	Err    string    `json:"err,omitempty"`
	Time   time.Time `json:"time"`
}

// interruptedErr is the failure text replayed jobs report.
const interruptedErr = "interrupted by daemon restart"

// openJournal replays dir/<prefix>.journal, compacts it down to its
// interrupted jobs (re-marked failed), and opens it for appending. The
// returned records are the interrupted jobs, oldest first; maxSeq is the
// highest sequence number ever journaled (0 on a fresh journal).
func openJournal(dir, prefix string) (*journal, []record, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("jobs: state dir: %w", err)
	}
	path := filepath.Join(dir, prefix+".journal")
	interrupted, maxSeq, err := replay(path)
	if err != nil {
		return nil, nil, 0, err
	}

	// Compact: the new journal carries one terminal record per interrupted
	// job, so the file is bounded by live history, not daemon lifetime.
	tmp, err := os.CreateTemp(dir, "."+prefix+".journal-*")
	if err != nil {
		return nil, nil, 0, fmt.Errorf("jobs: %w", err)
	}
	enc := json.NewEncoder(tmp)
	for i := range interrupted {
		interrupted[i].Status = Failed
		interrupted[i].Err = interruptedErr
		if err := enc.Encode(interrupted[i]); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return nil, nil, 0, fmt.Errorf("jobs: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, 0, fmt.Errorf("jobs: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, 0, fmt.Errorf("jobs: %w", err)
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("jobs: %w", err)
	}
	return &journal{path: path, f: f}, interrupted, maxSeq, nil
}

// replay scans a journal and reduces it to each job's last known state.
// It returns the jobs still marked running (oldest first) and the highest
// sequence number seen. A missing journal is an empty one.
func replay(path string) ([]record, int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("jobs: %w", err)
	}
	defer f.Close()

	last := make(map[string]record)
	var order []string
	maxSeq := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var r record
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil || r.ID == "" {
			continue // torn tail or foreign line; replay what parses
		}
		if _, seen := last[r.ID]; !seen {
			order = append(order, r.ID)
		}
		last[r.ID] = r
		if r.Seq > maxSeq {
			maxSeq = r.Seq
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("jobs: %w", err)
	}
	var interrupted []record
	for _, id := range order {
		if r := last[id]; r.Status == Running {
			interrupted = append(interrupted, r)
		}
	}
	return interrupted, maxSeq, nil
}

// append writes one record; failures are reported but non-fatal to the
// job (the caller logs and moves on — see the journal's durability note).
func (jn *journal) append(r record) error {
	if jn == nil {
		return nil
	}
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	_, err = jn.f.Write(append(data, '\n'))
	return err
}

// Close releases the journal's file handle.
func (jn *journal) Close() error {
	if jn == nil {
		return nil
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	return jn.f.Close()
}
