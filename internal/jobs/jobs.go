// Package jobs is a generic asynchronous job store: create a job that
// runs in the background under the server's lifetime context, poll it by
// id, cancel it, and let finished jobs age out under a retention cap. It
// replaces the two copy-pasted managers cmd/eendd grew for sweeps and
// optimizations — one tested lifecycle (running → done | cancelled |
// failed) that every async endpoint shares, with the payload type V
// carrying whatever progress and results the endpoint tracks.
package jobs

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

// The lifecycle: a job starts Running and ends in exactly one of the
// other three states.
const (
	Running   Status = "running"
	Done      Status = "done"
	Cancelled Status = "cancelled"
	Failed    Status = "failed"
)

// DefaultRetain is the retention cap applied when Options.Retain is not
// positive: how many finished jobs (with their result payloads) a store
// keeps for polling before evicting the oldest. Running jobs are never
// evicted.
const DefaultRetain = 32

// Options configures a Store.
type Options struct {
	// Prefix names the store's job ids: "sweep" yields sweep-1, sweep-2, …
	Prefix string
	// Retain caps how many finished jobs the store keeps (<= 0:
	// DefaultRetain). The oldest finished jobs are evicted first; running
	// jobs never are, so the live set can exceed the cap.
	Retain int
	// Clock stamps job creation times (nil: time.Now). Injected by tests.
	Clock func() time.Time
}

// Store owns a set of asynchronous jobs of one kind. Jobs run under the
// store's base context — a client may disconnect and poll later, but
// cancelling the base (server shutdown after the grace period) cancels
// every running job.
type Store[V any] struct {
	base   context.Context
	prefix string
	retain int
	clock  func() time.Time

	jn *journal

	mu   sync.Mutex
	seq  int
	jobs map[string]*Job[V]
}

// NewStore builds an in-memory job store whose jobs run under base; a
// restart forgets everything. NewJournaled is the persistent variant.
func NewStore[V any](base context.Context, o Options) *Store[V] {
	if o.Prefix == "" {
		o.Prefix = "job"
	}
	if o.Retain <= 0 {
		o.Retain = DefaultRetain
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return &Store[V]{
		base:   base,
		prefix: o.Prefix,
		retain: o.Retain,
		clock:  o.Clock,
		jobs:   make(map[string]*Job[V]),
	}
}

// NewJournaled builds a job store that journals status transitions to
// <dir>/<prefix>.journal and replays the journal on construction: jobs a
// previous process left running come back as Failed ("interrupted by
// daemon restart") so their clients learn the truth instead of a 404, and
// the id sequence continues where it left off. Payloads are not persisted
// — a replayed job carries its final status and a zero payload.
func NewJournaled[V any](base context.Context, dir string, o Options) (*Store[V], error) {
	s := NewStore[V](base, o)
	jn, interrupted, maxSeq, err := openJournal(dir, s.prefix)
	if err != nil {
		return nil, err
	}
	s.jn = jn
	s.seq = maxSeq
	for _, r := range interrupted {
		s.jobs[r.ID] = &Job[V]{
			id:      r.ID,
			seq:     r.Seq,
			created: r.Time,
			cancel:  func() {},
			status:  Failed,
			errText: r.Err,
		}
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// Close releases the store's journal handle (a nil journal is a no-op).
// Running jobs are unaffected; their final transitions simply stop being
// recorded, which the next replay reports as an interruption.
func (s *Store[V]) Close() error { return s.jn.Close() }

// Retain returns the store's effective retention cap.
func (s *Store[V]) Retain() int { return s.retain }

// Job is one asynchronous run with a payload of type V. The payload is
// only touched under the job's lock: writers go through Update, readers
// through Snapshot.
type Job[V any] struct {
	id      string
	seq     int
	created time.Time
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	status   Status
	errText  string
	value    V
	finalize func(v *V)
}

// ID returns the job's store-unique id.
func (j *Job[V]) ID() string { return j.id }

// Created returns the job's creation time.
func (j *Job[V]) Created() time.Time { return j.created }

// Cancel cancels the job's context. The job reaches Cancelled when its
// run function returns; finished jobs are unaffected.
func (j *Job[V]) Cancel() { j.cancel() }

// Update mutates the payload under the job's lock. Run functions call it
// for every progress tick, so pollers always see a consistent payload.
func (j *Job[V]) Update(fn func(v *V)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fn(&j.value)
}

// Finalize registers fn to mutate the payload in the same critical
// section that publishes the job's final status, after the run function
// returns. Run functions use it for their result payload, so a poller
// can never observe a final result attached to a still-running job.
func (j *Job[V]) Finalize(fn func(v *V)) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finalize = fn
}

// Snapshot returns the job's status, failure text (set only when Failed),
// and a copy of the payload, read atomically. V values that share
// underlying storage with the run function (slices, maps) must be copied
// by the run function before being stored, not by readers.
func (j *Job[V]) Snapshot() (Status, string, V) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.errText, j.value
}

// Status returns the job's current lifecycle state.
func (j *Job[V]) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// finished reports whether the job has left Running.
func (j *Job[V]) finished() bool { return j.Status() != Running }

// Start creates a job and launches run in the background. init seeds the
// payload before the job becomes visible, so a create response can carry
// totals without racing the runner. run's return value decides the final
// status: nil means Done; any error after the job's context was cancelled
// means Cancelled (the client asked for it — its error text is not a
// failure); any other error means Failed with the error recorded. A
// finalizer registered via Job.Finalize is applied atomically with the
// status transition.
func (s *Store[V]) Start(init func(v *V), run func(ctx context.Context, j *Job[V]) error) *Job[V] {
	ctx, cancel := context.WithCancel(s.base)
	s.mu.Lock()
	s.seq++
	j := &Job[V]{
		id:      fmt.Sprintf("%s-%d", s.prefix, s.seq),
		seq:     s.seq,
		created: s.clock(),
		ctx:     ctx,
		cancel:  cancel,
		status:  Running,
	}
	if init != nil {
		init(&j.value)
	}
	s.jobs[j.id] = j
	s.evictLocked()
	s.mu.Unlock()
	// Journal failures are deliberately non-fatal: the job still runs, at
	// worst its transition is lost to the next replay.
	_ = s.jn.append(record{ID: j.id, Seq: j.seq, Status: Running, Time: j.created})

	go func() {
		defer cancel()
		err := run(ctx, j)
		status, errText := Done, ""
		switch {
		case err == nil:
		case ctx.Err() != nil:
			status = Cancelled
		default:
			status, errText = Failed, err.Error()
		}
		// Journal before publishing: once a poller can observe the final
		// status, a restart's replay agrees with it.
		_ = s.jn.append(record{ID: j.id, Seq: j.seq, Status: status, Err: errText, Time: s.clock()})
		j.mu.Lock()
		defer j.mu.Unlock()
		if j.finalize != nil {
			j.finalize(&j.value)
			j.finalize = nil
		}
		j.status, j.errText = status, errText
	}()
	return j
}

// evictLocked drops the oldest finished jobs beyond the retention cap.
// Callers hold s.mu.
func (s *Store[V]) evictLocked() {
	if len(s.jobs) <= s.retain {
		return
	}
	jobs := make([]*Job[V], 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	excess := len(jobs) - s.retain
	for _, j := range jobs {
		if excess == 0 {
			break
		}
		if j.finished() {
			delete(s.jobs, j.id)
			excess--
		}
	}
}

// Get returns a job by id.
func (s *Store[V]) Get(id string) (*Job[V], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every retained job, newest first.
func (s *Store[V]) Jobs() []*Job[V] {
	s.mu.Lock()
	jobs := make([]*Job[V], 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq > jobs[k].seq })
	return jobs
}

// Len returns the number of retained jobs.
func (s *Store[V]) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}
