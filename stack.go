package eend

import (
	"fmt"
	"time"

	"eend/internal/network"
	"eend/internal/power"
)

// StackOption configures the protocol stack of a scenario. RoutingKind and
// PMKind values are themselves options, so a stack reads as
//
//	eend.WithStack(eend.TITAN, eend.ODPM, eend.PowerControl())
type StackOption interface {
	applyStack(*network.Stack)
}

// RoutingKind selects one of the paper's routing protocols. It implements
// StackOption.
type RoutingKind int

// Routing protocols from the paper.
const (
	DSR        RoutingKind = iota + 1 // dynamic source routing (baseline)
	MTPR                              // minimum total transmission power
	MTPRPlus                          // MTPR with receive cost included
	DSRHRate                          // joint heuristic, rate-aware cost
	DSRHNoRate                        // joint heuristic, rate-oblivious cost
	DSDV                              // proactive distance vector
	DSDVH                             // proactive joint heuristic
	TITAN                             // idling-energy-first (the paper's winner)
)

// routingKinds maps public kinds to the internal protocol enum.
var routingKinds = map[RoutingKind]struct {
	proto network.ProtocolKind
	name  string
}{
	DSR:        {network.ProtoDSR, "dsr"},
	MTPR:       {network.ProtoMTPR, "mtpr"},
	MTPRPlus:   {network.ProtoMTPRPlus, "mtpr+"},
	DSRHRate:   {network.ProtoDSRHRate, "dsrh-rate"},
	DSRHNoRate: {network.ProtoDSRHNoRate, "dsrh"},
	DSDV:       {network.ProtoDSDV, "dsdv"},
	DSDVH:      {network.ProtoDSDVH, "dsdvh"},
	TITAN:      {network.ProtoTITAN, "titan"},
}

func (k RoutingKind) applyStack(st *network.Stack) {
	st.Routing = routingKinds[k].proto
}

// String returns the kind's short name (the one ParseRouting accepts).
func (k RoutingKind) String() string {
	if e, ok := routingKinds[k]; ok {
		return e.name
	}
	return fmt.Sprintf("RoutingKind(%d)", int(k))
}

// ParseRouting resolves a routing short name (see RoutingNames).
func ParseRouting(name string) (RoutingKind, error) {
	for k, e := range routingKinds {
		if e.name == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("eend: unknown routing protocol %q (want one of %v)", name, RoutingNames())
}

// RoutingNames lists the short names accepted by ParseRouting in enum order.
func RoutingNames() []string {
	out := make([]string, 0, len(routingKinds))
	for k := DSR; k <= TITAN; k++ {
		out = append(out, routingKinds[k].name)
	}
	return out
}

// PMKind selects the power-management policy. It implements StackOption.
type PMKind int

// Power-management policies.
const (
	AlwaysActive PMKind = iota + 1 // radios idle whenever not communicating
	ODPM                           // on-demand power management (keep-alives)
)

func (k PMKind) applyStack(st *network.Stack) {
	switch k {
	case ODPM:
		st.PM = network.PMODPM
	default:
		st.PM = network.PMAlwaysActive
	}
}

// String returns the policy's short name (the one ParsePM accepts).
func (k PMKind) String() string {
	switch k {
	case AlwaysActive:
		return "active"
	case ODPM:
		return "odpm"
	default:
		return fmt.Sprintf("PMKind(%d)", int(k))
	}
}

// ParsePM resolves a power-management short name (see PMNames).
func ParsePM(name string) (PMKind, error) {
	switch name {
	case "active":
		return AlwaysActive, nil
	case "odpm":
		return ODPM, nil
	default:
		return 0, fmt.Errorf("eend: unknown power management %q (want one of %v)", name, PMNames())
	}
}

// PMNames lists the short names accepted by ParsePM.
func PMNames() []string { return []string{"active", "odpm"} }

// stackOptionFunc adapts a closure to StackOption.
type stackOptionFunc func(*network.Stack)

func (f stackOptionFunc) applyStack(st *network.Stack) { f(st) }

// PowerControl enables transmission power control for data frames (the
// paper's -PC suffix).
func PowerControl() StackOption {
	return stackOptionFunc(func(st *network.Stack) { st.PowerControl = true })
}

// PerfectSleep prices idle time at sleep power: the scheduling oracle of
// Section 5.2.3. It composes with AlwaysActive.
func PerfectSleep() StackOption {
	return stackOptionFunc(func(st *network.Stack) { st.PerfectSleep = true })
}

// Span enables the Span-style advertised-traffic-window PSM improvement at
// the MAC.
func Span() StackOption {
	return stackOptionFunc(func(st *network.Stack) { st.AdvertisedWindow = true })
}

// ODPMTimeouts overrides ODPM's keep-alive pair (paper defaults: 5 s after
// data, 10 s after routing control).
func ODPMTimeouts(data, route time.Duration) StackOption {
	return stackOptionFunc(func(st *network.Stack) {
		st.ODPM = power.ODPMConfig{DataTimeout: data, RouteTimeout: route}
	})
}

// StackLabel overrides the stack's display label (Results.Stack).
func StackLabel(label string) StackOption {
	return stackOptionFunc(func(st *network.Stack) { st.Label = label })
}

// StaticRoutes selects static routing: instead of a discovery protocol, the
// stack forwards along the given pinned node paths (each src..dst, one per
// demand of a design). This is how a solution of the formal design problem
// (eend/design, eend/opt) is evaluated by the packet-level simulator: the
// measured energy reflects exactly the relays the design keeps awake. The
// routes take part in the scenario's canonical encoding, so two scenarios
// that pin different designs fingerprint differently — which is what lets
// the opt subsystem cache simulator evaluations per candidate design.
// Compose with a PM policy as usual, e.g.
//
//	eend.WithStack(eend.StaticRoutes(routes...), eend.ODPM, eend.PowerControl())
func StaticRoutes(routes ...[]int) StackOption {
	cp := make([][]int, len(routes))
	for i, r := range routes {
		cp[i] = append([]int(nil), r...)
	}
	return stackOptionFunc(func(st *network.Stack) {
		st.Routing = network.ProtoStatic
		st.Routes = cp
	})
}
