package eend

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"eend/internal/geom"
	"eend/internal/network"
	"eend/internal/obs"
	"eend/internal/radio"
	"eend/internal/topology"
	"eend/internal/traffic"
)

// Scenario is a fully specified, validated simulation run. Build one with
// NewScenario and execute it with Run; a Scenario is immutable after
// construction and safe to run from multiple goroutines (each Run wires an
// independent simulator).
type Scenario struct {
	sc network.Scenario
	// opts is the option list the scenario was built from, retained so
	// Replicate can re-apply it under a derived seed.
	opts []Option
	// replicates is the seed-replication factor (>= 1; see WithReplicates).
	replicates int
	// fpOnce/fp memoize Fingerprint: the scenario is immutable, and the
	// fingerprint sits on hot paths (cache scans, batch coalescing keys,
	// per-candidate evaluation), so the canonical encoding is hashed once.
	fpOnce sync.Once
	fp     string
}

// Option configures a Scenario under construction.
type Option func(*builder) error

// builder accumulates options before validation.
type builder struct {
	sc         network.Scenario
	randFlows  []randomFlowSpec
	topo       *topology.Spec
	workloads  []Workload
	replicates int
}

// randomFlowSpec defers random-endpoint drawing until the seed and node
// count are final, so option order does not matter.
type randomFlowSpec struct {
	n, limit    int // limit 0: all nodes
	rate        float64
	packetBytes int
}

// WithSeed sets the random seed that fully determines the run (default 1).
func WithSeed(seed uint64) Option {
	return func(b *builder) error {
		b.sc.Seed = seed
		return nil
	}
}

// WithField sets the rectangular deployment area in meters (default
// 500x500).
func WithField(width, height float64) Option {
	return func(b *builder) error {
		if width <= 0 || height <= 0 {
			return fmt.Errorf("eend: field %gx%g is not positive", width, height)
		}
		b.sc.Field = geom.Field{Width: width, Height: height}
		return nil
	}
}

// WithNodes places n nodes uniformly at random in the field (default 50).
func WithNodes(n int) Option {
	return func(b *builder) error {
		if n <= 0 {
			return fmt.Errorf("eend: node count %d is not positive", n)
		}
		b.sc.Nodes = n
		b.sc.GridRows, b.sc.GridCols = 0, 0
		b.sc.Positions = nil
		return nil
	}
}

// WithGrid places rows x cols nodes on a regular grid instead of uniformly.
func WithGrid(rows, cols int) Option {
	return func(b *builder) error {
		if rows <= 0 || cols <= 0 {
			return fmt.Errorf("eend: grid %dx%d is not positive", rows, cols)
		}
		b.sc.GridRows, b.sc.GridCols = rows, cols
		b.sc.Nodes = 0
		b.sc.Positions = nil
		return nil
	}
}

// WithPositions pins node placement exactly (one node per point).
func WithPositions(pts ...Point) Option {
	return func(b *builder) error {
		if len(pts) == 0 {
			return fmt.Errorf("eend: WithPositions needs at least one point")
		}
		b.sc.Positions = append([]geom.Point(nil), pts...)
		b.sc.Nodes = 0
		b.sc.GridRows, b.sc.GridCols = 0, 0
		return nil
	}
}

// WithCard selects the radio card model (default Cabletron, the paper's
// primary card).
func WithCard(c Card) Option {
	return func(b *builder) error {
		b.sc.Card = c
		return nil
	}
}

// WithBandwidth overrides the channel bit rate in bit/s (default 2 Mbit/s).
func WithBandwidth(bps float64) Option {
	return func(b *builder) error {
		if bps <= 0 {
			return fmt.Errorf("eend: bandwidth %g bit/s is not positive", bps)
		}
		b.sc.Bandwidth = bps
		return nil
	}
}

// WithStack configures the protocol stack from routing kind, PM policy and
// modifiers, e.g. WithStack(TITAN, ODPM, PowerControl()). The default stack
// (when WithStack is not given at all) is TITAN-PC over ODPM, the paper's
// winner; an omitted PM policy defaults to ODPM too, matching the HTTP
// surface — pass AlwaysActive explicitly for radios that never sleep.
func WithStack(opts ...StackOption) Option {
	return func(b *builder) error {
		st := network.Stack{}
		for _, o := range opts {
			o.applyStack(&st)
		}
		if st.Routing == 0 {
			return fmt.Errorf("eend: stack needs a routing kind (e.g. eend.TITAN)")
		}
		if st.PM == 0 {
			st.PM = network.PMODPM
		}
		b.sc.Stack = st
		return nil
	}
}

// WithDuration sets the simulated horizon (default 300 s).
func WithDuration(d time.Duration) Option {
	return func(b *builder) error {
		if d <= 0 {
			return fmt.Errorf("eend: duration %v is not positive", d)
		}
		b.sc.Duration = d
		return nil
	}
}

// WithFlows appends explicit CBR flows.
func WithFlows(flows ...Flow) Option {
	return func(b *builder) error {
		b.sc.Flows = append(b.sc.Flows, flows...)
		return nil
	}
}

// WithRandomFlows appends n CBR flows with distinct random endpoints drawn
// deterministically from the scenario seed, each at rate bit/s with
// packetBytes-byte packets, starting in the paper's 20-25 s window.
func WithRandomFlows(n int, rate float64, packetBytes int) Option {
	return withRandomFlows(n, 0, rate, packetBytes)
}

// WithRandomFlowsAmong is WithRandomFlows with endpoints restricted to the
// first limit nodes — the paper's Table 2 methodology, where density grows
// but flow endpoints stay fixed.
func WithRandomFlowsAmong(n, limit int, rate float64, packetBytes int) Option {
	if limit < 2 {
		return func(*builder) error {
			return fmt.Errorf("eend: random-flow endpoint limit %d needs at least 2 nodes", limit)
		}
	}
	return withRandomFlows(n, limit, rate, packetBytes)
}

func withRandomFlows(n, limit int, rate float64, packetBytes int) Option {
	return func(b *builder) error {
		if n <= 0 {
			return fmt.Errorf("eend: random flow count %d is not positive", n)
		}
		if rate <= 0 {
			return fmt.Errorf("eend: flow rate %g bit/s is not positive", rate)
		}
		if packetBytes <= 0 {
			return fmt.Errorf("eend: packet size %d B is not positive", packetBytes)
		}
		b.randFlows = append(b.randFlows, randomFlowSpec{n: n, limit: limit, rate: rate, packetBytes: packetBytes})
		return nil
	}
}

// WithBattery gives every node an energy budget in joules and enables the
// Lifetime metrics in Results.
func WithBattery(joules float64) Option {
	return func(b *builder) error {
		if joules <= 0 {
			return fmt.Errorf("eend: battery budget %g J is not positive", joules)
		}
		b.sc.BatteryJ = joules
		return nil
	}
}

// NewScenario builds and validates a scenario from functional options.
// Unset options take the paper's defaults: seed 1, 50 nodes uniformly
// placed in a 500x500 m field, Cabletron cards, the TITAN-PC/ODPM stack,
// and a 300 s horizon. Options may be given in any order.
func NewScenario(opts ...Option) (*Scenario, error) {
	b := &builder{sc: network.Scenario{
		Seed:  1,
		Field: geom.Field{Width: 500, Height: 500},
		Nodes: 50,
		Card:  radio.Cabletron,
		Stack: network.Stack{
			Routing:      network.ProtoTITAN,
			PM:           network.PMODPM,
			PowerControl: true,
		},
		Duration: 300 * time.Second,
	}}
	for _, opt := range opts {
		if opt == nil {
			return nil, fmt.Errorf("eend: nil option")
		}
		if err := opt(b); err != nil {
			return nil, err
		}
	}
	// Topology placement is materialized first (it only needs the final
	// seed, field and node count), so the generated positions take part in
	// flow validation and the canonical encoding below.
	if b.topo != nil {
		switch {
		case b.sc.Positions != nil:
			return nil, fmt.Errorf("eend: WithTopology conflicts with WithPositions")
		case b.sc.GridRows > 0 || b.sc.GridCols > 0:
			return nil, fmt.Errorf("eend: WithTopology conflicts with WithGrid (use eend.GridTopology)")
		}
		b.sc.Positions = topology.Generate(*b.topo, b.sc.Field, b.sc.Nodes, topologyRNG(b.sc.Seed))
		b.sc.Nodes = 0
	}
	nodes := b.nodeCount()
	// Random flows are drawn last so the seed and node count options have
	// settled, whatever order they were given in.
	rng := network.EndpointRNG(b.sc.Seed)
	for _, spec := range b.randFlows {
		limit := spec.limit
		if limit == 0 {
			limit = nodes
		} else if limit > nodes {
			// Clamping here would silently change the endpoint draw and
			// break the fixed-endpoints-across-densities methodology the
			// option exists for (Table 2).
			return nil, fmt.Errorf("eend: random-flow endpoint limit %d exceeds node count %d", limit, nodes)
		}
		if limit < 2 {
			return nil, fmt.Errorf("eend: random flows need at least 2 nodes, have %d", limit)
		}
		base := len(b.sc.Flows)
		for i, f := range traffic.RandomFlows(rng, spec.n, limit, spec.rate, spec.packetBytes) {
			f.ID = base + i + 1
			b.sc.Flows = append(b.sc.Flows, f)
		}
	}
	// Workloads draw from their own stream so adding one never shifts the
	// endpoints the random flows above chose.
	wrng := workloadRNG(b.sc.Seed)
	for _, w := range b.workloads {
		flows, err := w.materialize(wrng, nodes)
		if err != nil {
			return nil, err
		}
		base := len(b.sc.Flows)
		for i, f := range flows {
			f.ID = base + i + 1
			b.sc.Flows = append(b.sc.Flows, f)
		}
	}
	if err := b.validate(nodes); err != nil {
		return nil, err
	}
	replicates := b.replicates
	if replicates <= 0 {
		replicates = 1
	}
	return &Scenario{
		sc:         b.sc,
		opts:       append([]Option(nil), opts...),
		replicates: replicates,
	}, nil
}

// nodeCount resolves the effective node count of the placement options.
func (b *builder) nodeCount() int {
	switch {
	case b.sc.Positions != nil:
		return len(b.sc.Positions)
	case b.sc.GridRows > 0 && b.sc.GridCols > 0:
		return b.sc.GridRows * b.sc.GridCols
	default:
		return b.sc.Nodes
	}
}

// validate rejects configurations the engine would reject at Build or,
// worse, mis-simulate.
func (b *builder) validate(nodes int) error {
	if err := b.sc.Card.Validate(); err != nil {
		return err
	}
	if nodes <= 0 {
		return fmt.Errorf("eend: scenario has no nodes")
	}
	for _, f := range b.sc.Flows {
		if err := f.Validate(); err != nil {
			return err
		}
		if f.Src < 0 || f.Src >= nodes || f.Dst < 0 || f.Dst >= nodes {
			return fmt.Errorf("eend: flow %d endpoints (%d,%d) out of range [0,%d)", f.ID, f.Src, f.Dst, nodes)
		}
	}
	if b.sc.Stack.Routing == network.ProtoStatic {
		if len(b.sc.Stack.Routes) == 0 {
			return fmt.Errorf("eend: static stack needs at least one route")
		}
		for i, r := range b.sc.Stack.Routes {
			if len(r) == 0 {
				return fmt.Errorf("eend: static route %d is empty", i)
			}
			for j, v := range r {
				if v < 0 || v >= nodes {
					return fmt.Errorf("eend: static route %d node %d out of range [0,%d)", i, v, nodes)
				}
				if j > 0 && r[j-1] == v {
					return fmt.Errorf("eend: static route %d repeats node %d", i, v)
				}
			}
		}
	}
	return nil
}

// Run wires the network and executes the scenario to its horizon.
// Cancellation is polled between event batches, so a cancelled ctx aborts
// even an hour-long Full-scale run promptly and returns the context's
// error. A scenario built with WithReplicates(n > 1) runs once per derived
// seed and returns the first replicate's Results with the cross-replicate
// mean/CI95 summary attached (see Results.Replicates).
func (s *Scenario) Run(ctx context.Context) (*Results, error) {
	if s.Replicates() > 1 {
		return s.runReplicated(ctx)
	}
	// The span brackets the run without touching it: the tracer observes
	// wall time only, so a traced run's Results (and fingerprint-keyed
	// cache entries) are bit-identical to an untraced one's.
	tr := obs.TracerFrom(ctx)
	sp := tr.Start(obs.SpanFrom(ctx), "sim", s.Fingerprint())
	res, err := network.RunContext(ctx, s.sc)
	if err != nil {
		sp.End(obs.A("error", err.Error()))
		return nil, err
	}
	sp.End(obs.A("fp", s.Fingerprint()), obs.AInt("events", int64(res.Events)))
	return &res, nil
}

// Seed returns the scenario's random seed.
func (s *Scenario) Seed() uint64 { return s.sc.Seed }

// NodeCount returns the number of simulated nodes.
func (s *Scenario) NodeCount() int {
	b := builder{sc: s.sc}
	return b.nodeCount()
}

// StackName returns the display label of the protocol stack under test.
func (s *Scenario) StackName() string { return s.sc.Stack.Name() }

// Duration returns the simulated horizon.
func (s *Scenario) Duration() time.Duration { return s.sc.Duration }

// Flows returns a copy of the scenario's traffic flows (explicit and
// materialized random ones).
func (s *Scenario) Flows() []Flow {
	return append([]Flow(nil), s.sc.Flows...)
}

// Card returns the radio card model under test.
func (s *Scenario) Card() Card { return s.sc.Card }

// Field returns the deployment area.
func (s *Scenario) Field() Field { return s.sc.Field }

// BatteryJ returns the per-node energy budget in joules, or 0 when nodes
// are unconstrained (WithBattery not given).
func (s *Scenario) BatteryJ() float64 { return s.sc.BatteryJ }

// Bandwidth returns the configured channel bit rate in bit/s, or 0 when the
// engine default (2 Mbit/s) applies.
func (s *Scenario) Bandwidth() float64 { return s.sc.Bandwidth }

// Positions returns a copy of the scenario's materialized node placement:
// non-nil for scenarios built with WithPositions or WithTopology (which
// materialize at NewScenario time), nil when placement is drawn by the
// engine at run time (WithNodes' uniform default, WithGrid). The opt
// subsystem derives design-problem graphs from these positions.
func (s *Scenario) Positions() []Point {
	if s.sc.Positions == nil {
		return nil
	}
	return append([]Point(nil), s.sc.Positions...)
}

// With derives a new Scenario by re-applying the receiver's options
// followed by extra ones — later options win, so With(WithSeed(9)) is "the
// same scenario under seed 9". Seed-dependent draws (placement, endpoints,
// jitter) are redrawn under the final configuration, exactly as if the
// combined option list had been passed to NewScenario.
func (s *Scenario) With(extra ...Option) (*Scenario, error) {
	opts := make([]Option, 0, len(s.opts)+len(extra))
	opts = append(opts, s.opts...)
	opts = append(opts, extra...)
	return NewScenario(opts...)
}

// canonicalVersion tags the canonical encoding. Bump it whenever a change
// to the simulator makes equal-looking scenarios produce different results
// (new Scenario field, changed random-stream derivation, ...), so stale
// cache entries stop matching instead of being served.
const canonicalVersion = "eend.scenario/2"

// Canonical returns the scenario's canonical encoding: a versioned,
// line-oriented text rendering of every field that affects simulation
// output, with deterministic number formatting. Two Scenarios have equal
// encodings exactly when they would produce identical Results; the
// encoding (and therefore Fingerprint) is stable across processes,
// platforms and repeated runs.
func (s *Scenario) Canonical() string {
	var w strings.Builder
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	fmt.Fprintf(&w, "%s\nseed=%d\nfield=%s,%s\n",
		canonicalVersion, s.sc.Seed, num(s.sc.Field.Width), num(s.sc.Field.Height))
	switch {
	case s.sc.Positions != nil:
		w.WriteString("placement=positions:")
		for i, p := range s.sc.Positions {
			if i > 0 {
				w.WriteByte(';')
			}
			fmt.Fprintf(&w, "%s,%s", num(p.X), num(p.Y))
		}
		w.WriteByte('\n')
	case s.sc.GridRows > 0 && s.sc.GridCols > 0:
		fmt.Fprintf(&w, "placement=grid:%dx%d\n", s.sc.GridRows, s.sc.GridCols)
	default:
		fmt.Fprintf(&w, "placement=uniform:%d\n", s.sc.Nodes)
	}
	c := s.sc.Card
	fmt.Fprintf(&w, "card=%s,%s,%s,%s,%s,%s,%s,%s,%s\n", c.Name,
		num(c.Idle), num(c.Recv), num(c.Sleep), num(c.Base),
		num(c.Alpha), num(c.PathLossExp), num(c.Range), num(c.SwitchEnergy))
	fmt.Fprintf(&w, "bandwidth=%s\n", num(s.sc.Bandwidth))
	st := s.sc.Stack
	fmt.Fprintf(&w, "stack=%d,%d,pc=%t,span=%t,perfect=%t,odpm=%d/%d,custom=%t,label=%s\n",
		st.Routing, st.PM, st.PowerControl, st.AdvertisedWindow, st.PerfectSleep,
		st.ODPM.DataTimeout.Nanoseconds(), st.ODPM.RouteTimeout.Nanoseconds(),
		st.Custom != nil, st.Label)
	// Static routes are part of simulation output, so they are part of the
	// encoding; the lines are emitted only when routes are pinned, which
	// keeps every pre-existing scenario's encoding (and fingerprint) stable.
	for i, r := range st.Routes {
		fmt.Fprintf(&w, "route=%d:", i)
		for j, v := range r {
			if j > 0 {
				w.WriteByte('-')
			}
			fmt.Fprintf(&w, "%d", v)
		}
		w.WriteByte('\n')
	}
	fmt.Fprintf(&w, "duration=%d\nbattery=%s\nreplicates=%d\n",
		s.sc.Duration.Nanoseconds(), num(s.sc.BatteryJ), s.Replicates())
	for _, f := range s.sc.Flows {
		fmt.Fprintf(&w, "flow=%d,%d,%d,%s,%d,%d,%d,%d\n",
			f.ID, f.Src, f.Dst, num(f.Rate), f.PacketBytes,
			f.StartMin.Nanoseconds(), f.StartMax.Nanoseconds(), f.Stop.Nanoseconds())
	}
	return w.String()
}

// Fingerprint returns the hex SHA-256 of the scenario's canonical
// encoding: a content address under which the scenario's Results can be
// cached (see eend/sweep) and compared across processes. Scenarios built
// by NewScenario are always fingerprintable; the internal experiments'
// custom-protocol stacks are not expressible through the facade and so
// never reach here.
func (s *Scenario) Fingerprint() string {
	s.fpOnce.Do(func() {
		sum := sha256.Sum256([]byte(s.Canonical()))
		s.fp = hex.EncodeToString(sum[:])
	})
	return s.fp
}
